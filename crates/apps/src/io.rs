//! File formats for the benchmark inputs.
//!
//! The Phoenix suite reads its inputs from files; this module provides the
//! same workflow for the reproduction: generate once with the Table I
//! generators ([`crate::inputs`]), persist, and re-run many times on
//! identical data. Formats are deliberately simple and versioned by a magic
//! header so mismatched files fail loudly instead of misparsing:
//!
//! * text (Word Count): plain UTF-8 lines;
//! * pixels (Histogram): `RAMRPIX1` + raw RGB triplets;
//! * points (Linear Regression): `RAMRLRP1` + little-endian `i32` pairs;
//! * points (KMeans): `RAMRKMP1` + little-endian `f64` triplets;
//! * matrix (PCA / MM): `RAMRMAT1` + `u64` dimension + little-endian `i64`
//!   cells, row-major.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::histogram::Pixel;
use crate::kmeans::{Point, DIM};
use crate::linear_regression::LrPoint;
use crate::matrix_multiply::Matrix;

const PIXEL_MAGIC: &[u8; 8] = b"RAMRPIX1";
const LR_MAGIC: &[u8; 8] = b"RAMRLRP1";
const KM_MAGIC: &[u8; 8] = b"RAMRKMP1";
const MATRIX_MAGIC: &[u8; 8] = b"RAMRMAT1";

fn bad_magic(expected: &[u8; 8]) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!(
            "missing {} header; is this the right input format?",
            String::from_utf8_lossy(expected)
        ),
    )
}

fn check_magic<R: Read>(reader: &mut R, expected: &[u8; 8]) -> io::Result<()> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic).map_err(|_| bad_magic(expected))?;
    if &magic != expected {
        return Err(bad_magic(expected));
    }
    Ok(())
}

/// Writes Word Count input as plain text lines.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_text(path: &Path, lines: &[String]) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for line in lines {
        writeln!(w, "{line}")?;
    }
    w.flush()
}

/// Reads Word Count input written by [`write_text`] (or any text file).
///
/// # Errors
///
/// Propagates I/O errors; non-UTF-8 content is an error.
pub fn read_text(path: &Path) -> io::Result<Vec<String>> {
    BufReader::new(std::fs::File::open(path)?).lines().collect()
}

/// Writes Histogram input as raw RGB triplets.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_pixels(path: &Path, pixels: &[Pixel]) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(PIXEL_MAGIC)?;
    for p in pixels {
        w.write_all(&[p.r, p.g, p.b])?;
    }
    w.flush()
}

/// Reads Histogram input written by [`write_pixels`].
///
/// # Errors
///
/// Fails with `InvalidData` on a wrong header or a truncated pixel.
pub fn read_pixels(path: &Path) -> io::Result<Vec<Pixel>> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    check_magic(&mut r, PIXEL_MAGIC)?;
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() % 3 != 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated pixel record"));
    }
    Ok(bytes.chunks_exact(3).map(|c| Pixel { r: c[0], g: c[1], b: c[2] }).collect())
}

/// Writes Linear Regression points.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_lr_points(path: &Path, points: &[LrPoint]) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(LR_MAGIC)?;
    for p in points {
        w.write_all(&p.x.to_le_bytes())?;
        w.write_all(&p.y.to_le_bytes())?;
    }
    w.flush()
}

/// Reads Linear Regression points written by [`write_lr_points`].
///
/// # Errors
///
/// Fails with `InvalidData` on a wrong header or a truncated record.
pub fn read_lr_points(path: &Path) -> io::Result<Vec<LrPoint>> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    check_magic(&mut r, LR_MAGIC)?;
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() % 8 != 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated point record"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| LrPoint {
            x: i32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
            y: i32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
        })
        .collect())
}

/// Writes KMeans points.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_km_points(path: &Path, points: &[Point]) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(KM_MAGIC)?;
    for p in points {
        for coord in p {
            w.write_all(&coord.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads KMeans points written by [`write_km_points`].
///
/// # Errors
///
/// Fails with `InvalidData` on a wrong header or a truncated record.
pub fn read_km_points(path: &Path) -> io::Result<Vec<Point>> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    check_magic(&mut r, KM_MAGIC)?;
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let stride = 8 * DIM;
    if bytes.len() % stride != 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated point record"));
    }
    Ok(bytes
        .chunks_exact(stride)
        .map(|c| {
            let mut p = [0.0; DIM];
            for (d, coord) in p.iter_mut().enumerate() {
                *coord = f64::from_le_bytes(c[d * 8..(d + 1) * 8].try_into().expect("8 bytes"));
            }
            p
        })
        .collect())
}

/// Writes a square matrix (PCA input or an MM factor).
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_matrix(path: &Path, matrix: &Matrix) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MATRIX_MAGIC)?;
    w.write_all(&(matrix.n() as u64).to_le_bytes())?;
    for row in 0..matrix.n() {
        for &cell in matrix.row(row) {
            w.write_all(&cell.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads a matrix written by [`write_matrix`].
///
/// # Errors
///
/// Fails with `InvalidData` on a wrong header or a size mismatch.
pub fn read_matrix(path: &Path) -> io::Result<Matrix> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    check_magic(&mut r, MATRIX_MAGIC)?;
    let mut dim_bytes = [0u8; 8];
    r.read_exact(&mut dim_bytes)?;
    let n = u64::from_le_bytes(dim_bytes) as usize;
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() != n * n * 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("matrix body has {} bytes, expected {}", bytes.len(), n * n * 8),
        ));
    }
    let data =
        bytes.chunks_exact(8).map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes"))).collect();
    Ok(Matrix::from_rows(n, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::{
        hg_input, km_input, lr_input, pca_matrix, wc_input, InputFlavor, InputSpec, Platform,
    };
    use crate::AppKind;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ramr-io-tests");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(name)
    }

    fn spec(app: AppKind) -> InputSpec {
        InputSpec::table1(app, Platform::XeonPhi, InputFlavor::Small)
    }

    #[test]
    fn text_round_trip() {
        let lines = wc_input(&spec(AppKind::WordCount), 100_000);
        let path = tmp("wc.txt");
        write_text(&path, &lines).unwrap();
        assert_eq!(read_text(&path).unwrap(), lines);
    }

    #[test]
    fn pixels_round_trip() {
        let pixels = hg_input(&spec(AppKind::Histogram), 500_000);
        let path = tmp("hg.pix");
        write_pixels(&path, &pixels).unwrap();
        assert_eq!(read_pixels(&path).unwrap(), pixels);
    }

    #[test]
    fn lr_points_round_trip() {
        let points = lr_input(&spec(AppKind::LinearRegression), 500_000);
        let path = tmp("lr.pts");
        write_lr_points(&path, &points).unwrap();
        assert_eq!(read_lr_points(&path).unwrap(), points);
    }

    #[test]
    fn km_points_round_trip() {
        let points = km_input(&spec(AppKind::Kmeans), 1000);
        let path = tmp("km.pts");
        write_km_points(&path, &points).unwrap();
        assert_eq!(read_km_points(&path).unwrap(), points);
    }

    #[test]
    fn matrix_round_trip() {
        let matrix = pca_matrix(&spec(AppKind::Pca), 100_000);
        let path = tmp("pca.mat");
        write_matrix(&path, &matrix).unwrap();
        assert_eq!(read_matrix(&path).unwrap(), matrix);
    }

    #[test]
    fn wrong_magic_is_rejected_across_formats() {
        let pixels = hg_input(&spec(AppKind::Histogram), 1_000_000);
        let path = tmp("mismatch.pix");
        write_pixels(&path, &pixels).unwrap();
        assert!(read_lr_points(&path).is_err(), "LR reader must reject pixel files");
        assert!(read_km_points(&path).is_err());
        assert!(read_matrix(&path).is_err());
    }

    #[test]
    fn truncated_body_is_rejected() {
        let path = tmp("trunc.pix");
        std::fs::write(&path, [PIXEL_MAGIC.as_slice(), &[1, 2]].concat()).unwrap();
        let err = read_pixels(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_collections_round_trip() {
        let path = tmp("empty.pix");
        write_pixels(&path, &[]).unwrap();
        assert!(read_pixels(&path).unwrap().is_empty());
        let path = tmp("empty.txt");
        write_text(&path, &[]).unwrap();
        assert!(read_text(&path).unwrap().is_empty());
    }

    #[test]
    fn missing_file_is_not_found() {
        let err = read_matrix(&tmp("does-not-exist.mat")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
