//! Matrix Multiply (MM), "adapted to utilize the Map/Reduce semantics".

use std::sync::Arc;

use mr_core::{Emitter, MapReduceJob};

/// A dense row-major integer matrix.
///
/// Integer entries keep products and sums exact, so both runtimes produce
/// bit-identical results — important for the differential tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    n: usize,
    data: Vec<i64>,
}

impl Matrix {
    /// Creates an `n × n` matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn from_rows(n: usize, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), n * n, "matrix data must be n*n");
        Self { n, data }
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> i64 {
        self.data[row * self.n + col]
    }

    /// The full row `row`.
    #[inline]
    pub fn row(&self, row: usize) -> &[i64] {
        &self.data[row * self.n..(row + 1) * self.n]
    }

    /// Reference (sequential) product, for verification.
    pub fn multiply_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.n, rhs.n);
        let n = self.n;
        let mut out = vec![0i64; n * n];
        for i in 0..n {
            for k in 0..n {
                let a = self.at(i, k);
                for j in 0..n {
                    out[i * n + j] += a * rhs.at(k, j);
                }
            }
        }
        Matrix { n, data: out }
    }
}

/// One map task: a row of `A` times one block of the inner (`k`) dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MmTask {
    /// Row of the output being produced.
    pub row: usize,
    /// Which `k`-block this task covers.
    pub k_block: usize,
}

/// Blocked `C = A × B` as a MapReduce job.
///
/// The inner dimension is split into blocks of `k_block_size`; each input
/// element (an [`MmTask`]) computes the partial products of one output row
/// restricted to one block, emitting `((i, j), partial)` for every column.
/// The combine phase sums partials across blocks — this is what makes MM a
/// *real* combine workload rather than a pure map: every output cell is
/// combined `n / k_block_size` times.
///
/// Keys are flattened to `i * n + j`; the key space is `n²`, so the default
/// container is an array over all output cells. The paper notes (§IV-E)
/// that this very choice makes MM's default-container profile stall-heavy:
/// each worker allocates the full `n²` array but touches only the rows it
/// maps, and switching to a right-sized hash container *reduces* its stalls.
#[derive(Debug, Clone)]
pub struct MatrixMultiply {
    a: Arc<Matrix>,
    b: Arc<Matrix>,
    k_block_size: usize,
}

impl MatrixMultiply {
    /// Creates the job for `a × b` with the given inner-dimension block.
    ///
    /// # Panics
    ///
    /// Panics if the matrices differ in size or `k_block_size` is zero.
    pub fn new(a: Arc<Matrix>, b: Arc<Matrix>, k_block_size: usize) -> Self {
        assert_eq!(a.n(), b.n(), "matrices must agree in size");
        assert!(k_block_size > 0, "k_block_size must be nonzero");
        Self { a, b, k_block_size }
    }

    /// Side length of the matrices.
    pub fn n(&self) -> usize {
        self.a.n()
    }

    /// Generates the task list covering the whole product.
    pub fn tasks(&self) -> Vec<MmTask> {
        let n = self.n();
        let blocks = n.div_ceil(self.k_block_size);
        let mut tasks = Vec::with_capacity(n * blocks);
        for row in 0..n {
            for k_block in 0..blocks {
                tasks.push(MmTask { row, k_block });
            }
        }
        tasks
    }
}

impl MapReduceJob for MatrixMultiply {
    type Input = MmTask;
    type Key = u64;
    type Value = i64;

    fn map(&self, task: &[MmTask], emit: &mut Emitter<'_, u64, i64>) {
        let n = self.n();
        for t in task {
            let k_start = t.k_block * self.k_block_size;
            let k_end = (k_start + self.k_block_size).min(n);
            // Partial row: sum over this k-block only.
            let mut partial = vec![0i64; n];
            for k in k_start..k_end {
                let a_ik = self.a.at(t.row, k);
                let b_row = self.b.row(k);
                for (j, &b_kj) in b_row.iter().enumerate() {
                    partial[j] += a_ik * b_kj;
                }
            }
            for (j, &value) in partial.iter().enumerate() {
                emit.emit((t.row * n + j) as u64, value);
            }
        }
    }

    fn combine(&self, acc: &mut i64, incoming: i64) {
        *acc += incoming;
    }

    fn key_space(&self) -> Option<usize> {
        Some(self.n() * self.n())
    }

    fn key_index(&self, key: &u64) -> usize {
        *key as usize
    }

    fn name(&self) -> &str {
        "matrix-multiply"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_matrices(n: usize) -> (Arc<Matrix>, Arc<Matrix>) {
        let a = Matrix::from_rows(n, (0..(n * n) as i64).collect());
        let b = Matrix::from_rows(n, (0..(n * n) as i64).map(|x| x * 3 - 7).collect());
        (Arc::new(a), Arc::new(b))
    }

    fn run_sequential(job: &MatrixMultiply) -> Matrix {
        let n = job.n();
        let mut cells = vec![0i64; n * n];
        let tasks = job.tasks();
        let mut sink = |k: u64, v: i64| cells[k as usize] += v;
        let mut emitter = Emitter::new(&mut sink);
        job.map(&tasks, &mut emitter);
        Matrix::from_rows(n, cells)
    }

    #[test]
    fn blocked_product_matches_reference() {
        for block in [1usize, 2, 3, 8] {
            let (a, b) = small_matrices(6);
            let job = MatrixMultiply::new(Arc::clone(&a), Arc::clone(&b), block);
            assert_eq!(run_sequential(&job), a.multiply_reference(&b), "block {block}");
        }
    }

    #[test]
    fn tasks_cover_all_rows_and_blocks() {
        let (a, b) = small_matrices(5);
        let job = MatrixMultiply::new(a, b, 2);
        let tasks = job.tasks();
        assert_eq!(tasks.len(), 5 * 3); // ceil(5/2) = 3 blocks
        assert!(tasks.iter().any(|t| t.row == 4 && t.k_block == 2));
    }

    #[test]
    fn key_space_is_output_size() {
        let (a, b) = small_matrices(4);
        let job = MatrixMultiply::new(a, b, 2);
        assert_eq!(job.key_space(), Some(16));
        assert_eq!(job.key_index(&15), 15);
    }

    #[test]
    #[should_panic(expected = "must agree in size")]
    fn mismatched_sizes_panic() {
        let a = Arc::new(Matrix::from_rows(2, vec![1, 2, 3, 4]));
        let b = Arc::new(Matrix::from_rows(3, vec![0; 9]));
        let _ = MatrixMultiply::new(a, b, 1);
    }

    #[test]
    #[should_panic(expected = "matrix data must be n*n")]
    fn bad_data_length_panics() {
        let _ = Matrix::from_rows(3, vec![1, 2, 3]);
    }

    #[test]
    fn reference_multiply_identity() {
        let n = 4;
        let mut id = vec![0i64; n * n];
        for i in 0..n {
            id[i * n + i] = 1;
        }
        let identity = Matrix::from_rows(n, id);
        let (a, _) = small_matrices(n);
        assert_eq!(a.multiply_reference(&identity), *a);
    }
}
