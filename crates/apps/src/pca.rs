//! Principal Component Analysis (PCA): row means, then the covariance
//! matrix, each as one MapReduce pass — the two-stage structure of the
//! Phoenix PCA benchmark.

use std::sync::Arc;

use mr_core::{Emitter, MapReduceJob};

use crate::matrix_multiply::Matrix;

/// Stage 1: the mean of every matrix row.
///
/// Input elements are row indices; the map sums the row and emits
/// `(row, sum)`; the driver divides by the row length. The key space is the
/// number of rows.
#[derive(Debug, Clone)]
pub struct PcaMeanJob {
    matrix: Arc<Matrix>,
}

impl PcaMeanJob {
    /// Creates the mean job over `matrix`.
    pub fn new(matrix: Arc<Matrix>) -> Self {
        Self { matrix }
    }

    /// The task list: one input element per row.
    pub fn tasks(&self) -> Vec<u32> {
        (0..self.matrix.n() as u32).collect()
    }

    /// Converts the reduced sums into per-row means.
    pub fn means(&self, reduced: &[(u32, i64)]) -> Vec<f64> {
        let n = self.matrix.n();
        let mut means = vec![0.0; n];
        for &(row, sum) in reduced {
            means[row as usize] = sum as f64 / n as f64;
        }
        means
    }
}

impl MapReduceJob for PcaMeanJob {
    type Input = u32;
    type Key = u32;
    type Value = i64;

    fn map(&self, task: &[u32], emit: &mut Emitter<'_, u32, i64>) {
        for &row in task {
            let sum: i64 = self.matrix.row(row as usize).iter().sum();
            emit.emit(row, sum);
        }
    }

    fn combine(&self, acc: &mut i64, incoming: i64) {
        // Each row is emitted exactly once, but partial re-emissions (e.g.
        // if a driver splits rows) still sum correctly.
        *acc += incoming;
    }

    fn key_space(&self) -> Option<usize> {
        Some(self.matrix.n())
    }

    fn key_index(&self, key: &u32) -> usize {
        *key as usize
    }

    fn name(&self) -> &str {
        "pca-mean"
    }
}

/// Stage 2: the upper-triangular covariance matrix.
///
/// Input elements are row indices `i`; the map computes
/// `cov(i, j) = Σ_c (a[i][c] − μ_i)(a[j][c] − μ_j)` for every `j ≥ i` and
/// emits `(i * n + j, cov)`. Work per input element is `O(n²)` multiplies —
/// the paper's highest-IPB application — while the combine phase only
/// places each emitted value once and thus causes very few stalls, which is
/// §IV-E's explanation for PCA being RAMR-neutral: plenty of computation
/// but no resource bottleneck for the decoupling to relieve.
#[derive(Debug, Clone)]
pub struct PcaCovJob {
    matrix: Arc<Matrix>,
    means: Arc<Vec<f64>>,
}

impl PcaCovJob {
    /// Creates the covariance job.
    ///
    /// # Panics
    ///
    /// Panics if `means.len()` differs from the matrix size.
    pub fn new(matrix: Arc<Matrix>, means: Arc<Vec<f64>>) -> Self {
        assert_eq!(matrix.n(), means.len(), "one mean per row required");
        Self { matrix, means }
    }

    /// The task list: one input element per row.
    pub fn tasks(&self) -> Vec<u32> {
        (0..self.matrix.n() as u32).collect()
    }

    /// Recovers `cov(i, j)` from a reduced key.
    pub fn unflatten(&self, key: u64) -> (usize, usize) {
        let n = self.matrix.n();
        ((key / n as u64) as usize, (key % n as u64) as usize)
    }
}

impl MapReduceJob for PcaCovJob {
    type Input = u32;
    type Key = u64;
    type Value = f64;

    fn map(&self, task: &[u32], emit: &mut Emitter<'_, u64, f64>) {
        let n = self.matrix.n();
        for &i in task {
            let i = i as usize;
            let row_i = self.matrix.row(i);
            let mean_i = self.means[i];
            for j in i..n {
                let row_j = self.matrix.row(j);
                let mean_j = self.means[j];
                let mut cov = 0.0;
                for c in 0..n {
                    cov += (row_i[c] as f64 - mean_i) * (row_j[c] as f64 - mean_j);
                }
                emit.emit((i * n + j) as u64, cov / (n as f64 - 1.0).max(1.0));
            }
        }
    }

    fn combine(&self, acc: &mut f64, incoming: f64) {
        *acc += incoming;
    }

    fn key_space(&self) -> Option<usize> {
        Some(self.matrix.n() * self.matrix.n())
    }

    fn key_index(&self, key: &u64) -> usize {
        *key as usize
    }

    fn name(&self) -> &str {
        "pca-cov"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_3x3() -> Arc<Matrix> {
        Arc::new(Matrix::from_rows(3, vec![1, 2, 3, 4, 5, 6, 9, 7, 5]))
    }

    fn run_means(job: &PcaMeanJob) -> Vec<f64> {
        let tasks = job.tasks();
        let mut reduced = Vec::new();
        let mut sink = |k: u32, v: i64| reduced.push((k, v));
        let mut emitter = Emitter::new(&mut sink);
        job.map(&tasks, &mut emitter);
        job.means(&reduced)
    }

    #[test]
    fn means_are_row_averages() {
        let job = PcaMeanJob::new(matrix_3x3());
        assert_eq!(run_means(&job), [2.0, 5.0, 7.0]);
    }

    #[test]
    fn covariance_matches_hand_computation() {
        let matrix = matrix_3x3();
        let means = Arc::new(run_means(&PcaMeanJob::new(Arc::clone(&matrix))));
        let job = PcaCovJob::new(Arc::clone(&matrix), means);
        let mut cov = std::collections::BTreeMap::new();
        let mut sink = |k: u64, v: f64| {
            cov.insert(k, v);
        };
        let mut emitter = Emitter::new(&mut sink);
        job.map(&job.tasks(), &mut emitter);
        // Row 0 = [1,2,3] (mean 2): var = ((-1)^2 + 0 + 1^2)/2 = 1.
        assert!((cov[&0] - 1.0).abs() < 1e-12);
        // Row 2 = [9,7,5] (mean 7): var = (4 + 0 + 4)/2 = 4.
        assert!((cov[&8] - 4.0).abs() < 1e-12);
        // cov(0, 2): ((-1)(2) + 0 + (1)(-2))/2 = -2.
        assert!((cov[&2] - -2.0).abs() < 1e-12);
        // Only the upper triangle is emitted.
        assert_eq!(cov.len(), 6);
        assert!(!cov.contains_key(&3), "key (1,0) is in the lower triangle");
    }

    #[test]
    fn unflatten_inverts_flattening() {
        let job = PcaCovJob::new(matrix_3x3(), Arc::new(vec![0.0; 3]));
        assert_eq!(job.unflatten(0), (0, 0));
        assert_eq!(job.unflatten(5), (1, 2));
        assert_eq!(job.unflatten(8), (2, 2));
    }

    #[test]
    #[should_panic(expected = "one mean per row")]
    fn wrong_mean_count_panics() {
        let _ = PcaCovJob::new(matrix_3x3(), Arc::new(vec![0.0; 2]));
    }

    #[test]
    fn key_spaces_are_declared() {
        let matrix = matrix_3x3();
        assert_eq!(PcaMeanJob::new(Arc::clone(&matrix)).key_space(), Some(3));
        assert_eq!(PcaCovJob::new(matrix, Arc::new(vec![0.0; 3])).key_space(), Some(9));
    }
}
