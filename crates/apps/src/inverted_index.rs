//! Inverted index (II) and top-k document frequency (TopKDf): the two
//! stages of the pipeline showcase.
//!
//! Stage one builds a term → sorted posting-list index over `(doc, line)`
//! pairs; stage two consumes the index's `(term, postings)` pairs *as its
//! input items* (the shape the `ramr` crate's `then_pairs` hands over) and
//! folds them into the k terms with the highest document frequency. Both
//! folds are associative and deterministic, so the chained output is
//! byte-identical across backends and fold orders.

use mr_core::{Emitter, MapReduceJob};
use ramr_containers::CompactKey;

/// Builds an inverted index: term → sorted, deduplicated document ids.
///
/// Input elements are `(doc, line)` pairs; the map function splits the line
/// on ASCII whitespace, lower-cases each word into a [`CompactKey`] and
/// emits `(term, [doc])`. Combining is sorted-union merge, which is
/// associative and commutative — the posting lists come out identical
/// whatever order the runtime folds them in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvertedIndex;

impl MapReduceJob for InvertedIndex {
    type Input = (u32, String);
    type Key = CompactKey;
    type Value = Vec<u32>;

    fn map(&self, task: &[(u32, String)], emit: &mut Emitter<'_, CompactKey, Vec<u32>>) {
        for (doc, line) in task {
            for word in line.split_ascii_whitespace() {
                emit.emit(CompactKey::ascii_lowercase(word), vec![*doc]);
            }
        }
    }

    fn combine(&self, acc: &mut Vec<u32>, incoming: Vec<u32>) {
        *acc = sorted_union(acc, &incoming);
    }

    fn name(&self) -> &str {
        "inverted-index"
    }

    /// Indexing is a pure function of the task's lines.
    fn is_retry_safe(&self) -> bool {
        true
    }
}

/// Union of two sorted, deduplicated id lists, sorted and deduplicated.
fn sorted_union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// One scored index entry: document frequency and term.
pub type DfEntry = (u64, CompactKey);

/// Folds an index's `(term, postings)` pairs into the `k` terms with the
/// highest document frequency.
///
/// Input items are exactly [`InvertedIndex`]'s output pairs, so the job
/// chains behind it with `then_pairs`. Everything lands on the single key
/// `0`; the value is a leaderboard of [`DfEntry`]s ordered by document
/// frequency descending, then term ascending, truncated to `k`. Top-k
/// merge under a total order is associative (terms are distinct), so the
/// result does not depend on how the runtime folds partial leaderboards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKDf {
    /// Leaderboard size.
    pub k: usize,
}

impl TopKDf {
    /// Leaderboard order: document frequency descending, term ascending.
    fn rank(a: &DfEntry, b: &DfEntry) -> std::cmp::Ordering {
        b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1))
    }
}

impl MapReduceJob for TopKDf {
    type Input = (CompactKey, Vec<u32>);
    type Key = u32;
    type Value = Vec<DfEntry>;

    fn map(&self, task: &[(CompactKey, Vec<u32>)], emit: &mut Emitter<'_, u32, Vec<DfEntry>>) {
        for (term, postings) in task {
            emit.emit(0, vec![(postings.len() as u64, term.clone())]);
        }
    }

    fn combine(&self, acc: &mut Vec<DfEntry>, incoming: Vec<DfEntry>) {
        let mut merged = Vec::with_capacity(acc.len() + incoming.len());
        merged.append(acc);
        merged.extend(incoming);
        merged.sort_unstable_by(Self::rank);
        merged.truncate(self.k);
        *acc = merged;
    }

    fn key_space(&self) -> Option<usize> {
        Some(1)
    }

    fn key_index(&self, _k: &u32) -> usize {
        0
    }

    fn name(&self) -> &str {
        "top-k-df"
    }

    fn is_retry_safe(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_is_sorted_and_deduplicated() {
        assert_eq!(sorted_union(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(sorted_union(&[], &[4]), vec![4]);
    }

    #[test]
    fn index_map_emits_lowercased_terms_with_doc_ids() {
        let input = vec![(7u32, "The CAT".to_string())];
        let mut pairs = Vec::new();
        let mut sink = |k: CompactKey, v: Vec<u32>| pairs.push((k, v));
        let mut emitter = Emitter::new(&mut sink);
        InvertedIndex.map(&input, &mut emitter);
        assert_eq!(pairs, vec![("the".into(), vec![7]), ("cat".into(), vec![7])]);
    }

    #[test]
    fn topk_merge_is_order_independent() {
        let job = TopKDf { k: 2 };
        let entries: Vec<Vec<DfEntry>> = vec![
            vec![(3, "alpha".into())],
            vec![(5, "beta".into())],
            vec![(5, "aardvark".into())],
            vec![(1, "gamma".into())],
        ];
        let fold = |order: &[usize]| {
            let mut acc: Vec<DfEntry> = Vec::new();
            for &i in order {
                job.combine(&mut acc, entries[i].clone());
            }
            acc
        };
        let forward = fold(&[0, 1, 2, 3]);
        let backward = fold(&[3, 2, 1, 0]);
        assert_eq!(forward, backward);
        assert_eq!(forward, vec![(5, "aardvark".into()), (5, "beta".into())]);
    }
}
