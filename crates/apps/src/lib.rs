//! The six evaluation applications of the RAMR paper.
//!
//! The paper evaluates against the Phoenix++ benchmark suite, "deriving from
//! a wide range of computing domains": enterprise (**Word Count**),
//! scientific (**Matrix Multiply**, adapted to Map/Reduce semantics),
//! artificial intelligence (**KMeans**, **PCA**, **Linear Regression**) and
//! image processing (**Histogram**). Every application implements
//! [`mr_core::MapReduceJob`] and therefore runs unchanged on both the
//! Phoenix++-style baseline and the RAMR runtime — the basis of the
//! differential test suite and of every speedup figure.
//!
//! [`inputs`] generates deterministic, seeded inputs scaled from the paper's
//! Table I (see [`inputs::InputSpec`]); each application module documents
//! its key space and its default container per §IV-D:
//!
//! | App | Default container | Stressed container (Figs 8b/9b/10b) |
//! |-----|-------------------|--------------------------------------|
//! | WC  | hash              | fixed-size hash                      |
//! | HG  | array             | fixed-size hash                      |
//! | LR  | array             | fixed-size hash                      |
//! | KM  | array             | fixed-size hash                      |
//! | PCA | array             | hash                                 |
//! | MM  | array             | hash                                 |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod histogram;
pub mod inputs;
pub mod inverted_index;
pub mod io;
pub mod kmeans;
pub mod linear_regression;
pub mod matrix_multiply;
pub mod pca;
pub mod word_count;

pub use histogram::{Histogram, Pixel};
pub use inverted_index::{DfEntry, InvertedIndex, TopKDf};
pub use kmeans::{KmeansJob, KmeansState, Point, DIM};
pub use linear_regression::{LinearRegression, LrPoint, LrStat};
pub use matrix_multiply::{Matrix, MatrixMultiply, MmTask};
pub use pca::{PcaCovJob, PcaMeanJob};
pub use word_count::{WordCount, WordCountString};

use mr_core::ContainerKind;

/// The six applications, in the paper's presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Word Count (WC): count word occurrences in text.
    WordCount,
    /// Histogram (HG): 768-bin RGB histogram of an image.
    Histogram,
    /// Linear Regression (LR): five running sums over (x, y) points.
    LinearRegression,
    /// KMeans (KM): one Lloyd iteration per MR invocation.
    Kmeans,
    /// Principal Component Analysis (PCA): covariance of a square matrix.
    Pca,
    /// Matrix Multiply (MM): blocked C = A × B with combined partials.
    MatrixMultiply,
}

impl AppKind {
    /// All applications in paper order.
    pub const ALL: [AppKind; 6] = [
        AppKind::WordCount,
        AppKind::Histogram,
        AppKind::LinearRegression,
        AppKind::Kmeans,
        AppKind::Pca,
        AppKind::MatrixMultiply,
    ];

    /// The paper's two-letter abbreviation.
    pub fn abbrev(&self) -> &'static str {
        match self {
            AppKind::WordCount => "WC",
            AppKind::Histogram => "HG",
            AppKind::LinearRegression => "LR",
            AppKind::Kmeans => "KM",
            AppKind::Pca => "PCA",
            AppKind::MatrixMultiply => "MM",
        }
    }

    /// Default intermediate container (§IV-D): thread-local fixed arrays
    /// everywhere the key range is known a priori; Word Count uses a hash
    /// table "more suitable for storing an arbitrary set of keys".
    pub fn default_container(&self) -> ContainerKind {
        match self {
            AppKind::WordCount => ContainerKind::Hash,
            _ => ContainerKind::Array,
        }
    }

    /// The container used to stress the memory intensity of the combine
    /// phase (Figs 8b/9b): fixed-size hash for HG/KM/LR/WC, regular hash
    /// for MM/PCA.
    pub fn stressed_container(&self) -> ContainerKind {
        match self {
            AppKind::MatrixMultiply | AppKind::Pca => ContainerKind::Hash,
            _ => ContainerKind::FixedHash,
        }
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviations_match_paper() {
        let abbrevs: Vec<&str> = AppKind::ALL.iter().map(|a| a.abbrev()).collect();
        assert_eq!(abbrevs, ["WC", "HG", "LR", "KM", "PCA", "MM"]);
    }

    #[test]
    fn default_containers_match_paper() {
        for app in AppKind::ALL {
            let expected =
                if app == AppKind::WordCount { ContainerKind::Hash } else { ContainerKind::Array };
            assert_eq!(app.default_container(), expected, "{app}");
        }
    }

    #[test]
    fn stressed_containers_match_paper() {
        assert_eq!(AppKind::MatrixMultiply.stressed_container(), ContainerKind::Hash);
        assert_eq!(AppKind::Pca.stressed_container(), ContainerKind::Hash);
        for app in
            [AppKind::WordCount, AppKind::Histogram, AppKind::LinearRegression, AppKind::Kmeans]
        {
            assert_eq!(app.stressed_container(), ContainerKind::FixedHash, "{app}");
        }
    }
}
