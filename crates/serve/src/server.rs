//! The server: accept loop, per-connection protocol drivers, pool cache,
//! and the graceful-shutdown choreography.
//!
//! Thread structure (one box per thread kind):
//!
//! ```text
//! accept loop ──spawns──▶ connection driver ──spawns──▶ job waiter
//!   (1 per server)          (1 per client)              (1 per accepted job)
//! ```
//!
//! The connection driver owns the read side of its socket; the write side
//! is a mutex-shared clone so waiter threads interleave `RESULT` frames
//! with the driver's own replies without tearing frames. Every blocking
//! read carries a short timeout, which doubles as the shutdown poll: when
//! the stop flag rises, drivers finish their waiters, say `BYE`, and
//! exit; the accept loop joins them all before [`Server::wait`] returns.
//!
//! Shutdown itself is one atomic take of the pool map: dropping a
//! [`ramr::JobScheduler`] lets the in-flight epoch finish and fulfils
//! every queued ticket with a shutdown error, so accepted jobs always
//! resolve to a `RESULT` or a `JOB_ERROR` — never silence.

use std::collections::BTreeMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use mr_apps::inputs::{InputFlavor, Platform, DEFAULT_SCALE};
use mr_apps::AppKind;
use ramr::{Backend, TenantStats};
use ramr_telemetry::json::Value;

use crate::proto::{self, RequestKind, ResponseKind, PROTOCOL_VERSION};
use crate::registry::{self, AppPool, WireSpec, POISON_APP, SERVABLE_APPS};
use crate::ServeConfig;

/// How often idle reads wake to poll the stop flag.
const POLL_TIMEOUT: Duration = Duration::from_millis(100);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_NAP: Duration = Duration::from_millis(20);

/// A pool's identity: same app + backend + knob overrides ⇒ same pool.
type PoolKey = (String, String, Vec<(String, String)>);

struct Inner {
    config: ServeConfig,
    stop: AtomicBool,
    /// `None` once shutdown has taken (and dropped) the pools.
    pools: Mutex<Option<BTreeMap<PoolKey, Arc<dyn AppPool>>>>,
}

impl Inner {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Finds or builds the pool for one submit. Building happens under
    /// the map lock, so two racing submits cannot double-spawn a pool.
    fn pool_for(
        &self,
        key: &PoolKey,
        config: &mr_core::RuntimeConfig,
        backend: Backend,
    ) -> Result<Arc<dyn AppPool>, String> {
        let mut guard = self.pools.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let pools = guard.as_mut().ok_or("server is shutting down")?;
        if let Some(pool) = pools.get(key) {
            return Ok(Arc::clone(pool));
        }
        if pools.len() >= self.config.max_pools {
            return Err(format!(
                "pool limit reached ({} of {}): reuse an existing app/backend/knob set \
                 or raise RAMR_SERVE_MAX_POOLS",
                pools.len(),
                self.config.max_pools
            ));
        }
        let pool = registry::make_pool(&key.0, backend, config.clone(), self.config.chaos)?;
        pools.insert(key.clone(), Arc::clone(&pool));
        Ok(pool)
    }

    /// Raises the stop flag and drops every pool. Dropping a scheduler
    /// drains its in-flight epoch and fulfils queued tickets with a
    /// shutdown error, so waiter threads resolve promptly.
    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let taken = self.pools.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        drop(taken);
    }

    /// The `METRICS_REPORT` frame: live gauges for every pool plus the
    /// per-tenant accounting (including the typed shed breakdown).
    fn metrics_frame(&self) -> Value {
        let guard = self.pools.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut pools = Vec::new();
        if let Some(map) = guard.as_ref() {
            for ((app, backend, knobs), pool) in map {
                let status = pool.status();
                let mut entry = BTreeMap::new();
                entry.insert("app".into(), Value::Str(app.clone()));
                entry.insert("backend".into(), Value::Str(backend.clone()));
                entry.insert(
                    "knobs".into(),
                    Value::Obj(
                        knobs.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect(),
                    ),
                );
                entry.insert("queue_depth".into(), Value::Num(status.queue_depth as f64));
                entry.insert("queue_capacity".into(), Value::Num(status.queue_capacity as f64));
                entry.insert("saturated".into(), Value::Bool(status.saturated));
                entry.insert(
                    "tenants".into(),
                    Value::Arr(pool.tenant_stats().iter().map(tenant_json).collect()),
                );
                pools.push(Value::Obj(entry));
            }
        }
        frame(
            ResponseKind::MetricsReport,
            &[("shutting_down", Value::Bool(guard.is_none())), ("pools", Value::Arr(pools))],
        )
    }
}

fn tenant_json(s: &TenantStats) -> Value {
    let ms = |d: std::time::Duration| Value::Num(d.as_secs_f64() * 1e3);
    let num = |n: u64| Value::Num(n as f64);
    Value::Obj(
        [
            ("tenant".to_string(), Value::Str(s.tenant.clone())),
            ("weight".to_string(), num(u64::from(s.weight))),
            ("submitted".to_string(), num(s.submitted)),
            ("completed".to_string(), num(s.completed)),
            ("failed".to_string(), num(s.failed)),
            ("shed".to_string(), num(s.shed)),
            ("shed_queue_full".to_string(), num(s.shed_queue_full)),
            ("shed_quota".to_string(), num(s.shed_quota)),
            ("shed_saturated".to_string(), num(s.shed_saturated)),
            ("queue_wait_ms".to_string(), ms(s.queue_wait)),
            ("max_queue_wait_ms".to_string(), ms(s.max_queue_wait)),
            ("run_time_ms".to_string(), ms(s.run_time)),
        ]
        .into_iter()
        .collect(),
    )
}

/// Builds a response frame: the kind's wire name plus the given members.
fn frame(kind: ResponseKind, members: &[(&str, Value)]) -> Value {
    let mut obj: BTreeMap<String, Value> =
        members.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect();
    obj.insert("type".into(), Value::Str(kind.as_str().into()));
    Value::Obj(obj)
}

/// A mutex-shared write side; waiter threads and the connection driver
/// interleave whole frames through it.
#[derive(Clone)]
struct FrameWriter {
    stream: Arc<Mutex<TcpStream>>,
    max_frame: usize,
}

impl FrameWriter {
    /// Writes one frame; delivery failures are returned (the driver
    /// closes on them) but waiter threads may ignore them — a vanished
    /// client cannot be told anything.
    fn send(&self, value: &Value) -> io::Result<()> {
        let mut stream = self.stream.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        proto::write_frame(&mut *stream, value, self.max_frame)
    }
}

/// The running server. Binds on [`Server::bind`]; runs until
/// [`Server::shutdown`] (or a client's authorized `SHUTDOWN` frame);
/// [`Server::wait`] joins every thread the server spawned.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("stopping", &self.inner.stopping())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener and starts accepting connections.
    ///
    /// # Errors
    ///
    /// The bind/configuration error when the address is unusable.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            config,
            stop: AtomicBool::new(false),
            pools: Mutex::new(Some(BTreeMap::new())),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = thread::Builder::new()
            .name("ramr-serve-accept".into())
            .spawn(move || accept_loop(&accept_inner, &listener))
            .map_err(|e| io::Error::other(format!("cannot spawn accept thread: {e}")))?;
        Ok(Server { inner, addr, accept: Some(accept) })
    }

    /// The bound address (resolves `HOST:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown: stop accepting, drain the in-flight
    /// epoch, fulfil queued tickets with a shutdown error, `BYE` every
    /// connection. Returns immediately; [`Server::wait`] blocks until the
    /// choreography completes.
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }

    /// Whether shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.stopping()
    }

    /// Blocks until the server has fully stopped (accept loop and every
    /// connection thread joined). Call [`Server::shutdown`] first — or
    /// rely on a client's `SHUTDOWN` frame — to make it stop.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.inner.shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    let mut drivers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !inner.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = Arc::clone(inner);
                let spawned = thread::Builder::new()
                    .name("ramr-serve-conn".into())
                    .spawn(move || drive_connection(&conn_inner, stream));
                match spawned {
                    Ok(handle) => drivers.push(handle),
                    Err(_) => { /* out of threads: drop the connection */ }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_NAP),
            Err(_) => thread::sleep(ACCEPT_NAP),
        }
        drivers.retain(|h| !h.is_finished());
    }
    for handle in drivers {
        let _ = handle.join();
    }
}

/// Everything one connection needs, bundled for the handlers.
struct Conn<'a> {
    inner: &'a Arc<Inner>,
    writer: FrameWriter,
    tenant: String,
    /// Waiter threads for this connection's accepted jobs.
    waiters: Vec<thread::JoinHandle<()>>,
}

fn drive_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TIMEOUT));
    let Ok(write_half) = stream.try_clone() else { return };
    let writer =
        FrameWriter { stream: Arc::new(Mutex::new(write_half)), max_frame: inner.config.max_frame };
    let mut reader = BufReader::new(stream);
    let max_frame = inner.config.max_frame;

    // Handshake: the first frame must be an authenticated HELLO.
    let tenant = loop {
        match proto::read_frame(&mut reader, max_frame) {
            Ok(Some(hello)) => match check_hello(inner, &hello) {
                Ok(tenant) => {
                    let apps: Vec<Value> = SERVABLE_APPS
                        .iter()
                        .map(|a| Value::Str((*a).into()))
                        .chain(inner.config.chaos.then(|| Value::Str(POISON_APP.into())))
                        .collect();
                    let welcome = frame(
                        ResponseKind::Welcome,
                        &[
                            ("tenant", Value::Str(tenant.clone())),
                            ("version", Value::Num(PROTOCOL_VERSION as f64)),
                            ("apps", Value::Arr(apps)),
                        ],
                    );
                    if writer.send(&welcome).is_err() {
                        return;
                    }
                    break tenant;
                }
                Err(message) => {
                    let _ =
                        writer.send(&frame(ResponseKind::Error, &[("error", Value::Str(message))]));
                    return;
                }
            },
            Ok(None) => return,
            Err(e) if timed_out(&e) => {
                if inner.stopping() {
                    let _ = writer.send(&frame(ResponseKind::Bye, &[]));
                    return;
                }
            }
            Err(_) => {
                let _ = writer.send(&frame(
                    ResponseKind::Error,
                    &[("error", Value::Str("malformed frame before HELLO".into()))],
                ));
                return;
            }
        }
    };

    let mut conn = Conn { inner, writer, tenant, waiters: Vec::new() };
    loop {
        match proto::read_frame(&mut reader, max_frame) {
            Ok(Some(request)) => {
                if !handle_request(&mut conn, &request) {
                    break;
                }
            }
            Ok(None) => break, // client closed cleanly
            Err(e) if timed_out(&e) => {
                if conn.inner.stopping() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = conn.writer.send(&frame(
                    ResponseKind::Error,
                    &[("error", Value::Str(format!("protocol error: {e}")))],
                ));
                break;
            }
            Err(_) => break,
        }
    }

    // Resolve every in-flight job before saying goodbye, so a client that
    // reads until BYE has seen all of its RESULT / JOB_ERROR frames.
    for waiter in conn.waiters.drain(..) {
        let _ = waiter.join();
    }
    let _ = conn.writer.send(&frame(ResponseKind::Bye, &[]));
}

fn timed_out(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Validates a HELLO frame; returns the tenant name.
fn check_hello(inner: &Inner, hello: &Value) -> Result<String, String> {
    let kind = proto::frame_type(hello)?;
    if RequestKind::from_wire(kind) != Some(RequestKind::Hello) {
        return Err(format!("expected HELLO as the first frame, got {kind:?}"));
    }
    let tenant = hello
        .get("tenant")
        .and_then(Value::as_str)
        .filter(|t| !t.is_empty())
        .ok_or("HELLO needs a non-empty string \"tenant\"")?;
    check_token(inner, hello, "HELLO")?;
    Ok(tenant.to_string())
}

fn check_token(inner: &Inner, request: &Value, what: &str) -> Result<(), String> {
    if let Some(expected) = &inner.config.token {
        let presented = request.get("token").and_then(Value::as_str);
        if presented != Some(expected.as_str()) {
            return Err(format!("{what} rejected: bad or missing token"));
        }
    }
    Ok(())
}

/// Dispatches one steady-state request. Returns `false` when the
/// connection should close.
fn handle_request(conn: &mut Conn<'_>, request: &Value) -> bool {
    let kind = match proto::frame_type(request) {
        Ok(kind) => kind,
        Err(message) => {
            let _ =
                conn.writer.send(&frame(ResponseKind::Error, &[("error", Value::Str(message))]));
            return false;
        }
    };
    match RequestKind::from_wire(kind) {
        Some(RequestKind::Submit) => {
            handle_submit(conn, request);
            true
        }
        Some(RequestKind::Metrics) => conn.writer.send(&conn.inner.metrics_frame()).is_ok(),
        Some(RequestKind::Shutdown) => {
            match check_token(conn.inner, request, "SHUTDOWN") {
                Ok(()) => {
                    // Dropping the pools resolves every in-flight ticket;
                    // the driver joins its waiters and BYEs on return.
                    conn.inner.shutdown();
                    false
                }
                Err(message) => {
                    let _ = conn
                        .writer
                        .send(&frame(ResponseKind::Error, &[("error", Value::Str(message))]));
                    true
                }
            }
        }
        Some(RequestKind::Hello) => {
            let _ = conn.writer.send(&frame(
                ResponseKind::Error,
                &[("error", Value::Str("already authenticated".into()))],
            ));
            false
        }
        None => {
            let _ = conn.writer.send(&frame(
                ResponseKind::Error,
                &[("error", Value::Str(format!("unknown request type {kind:?}")))],
            ));
            false
        }
    }
}

/// One SUBMIT: admission-check, then either spawn a waiter (ACCEPTED) or
/// answer RETRY_AFTER / JOB_ERROR. Job-scoped failures keep the
/// connection alive — only protocol-level breakage closes it.
fn handle_submit(conn: &mut Conn<'_>, request: &Value) {
    // Opportunistically reap finished waiters so long-lived connections
    // do not accumulate dead handles.
    conn.waiters.retain(|h| !h.is_finished());

    let id = request.get("id").and_then(Value::as_u64).unwrap_or(0);
    let job_error = |conn: &Conn<'_>, message: String| {
        let _ = conn.writer.send(&frame(
            ResponseKind::JobError,
            &[("id", Value::Num(id as f64)), ("error", Value::Str(message))],
        ));
    };

    let parsed = parse_submit(conn.inner, request);
    let (app, backend, spec, echo, config, key) = match parsed {
        Ok(parts) => parts,
        Err(message) => return job_error(conn, message),
    };
    let pool = match conn.inner.pool_for(&key, &config, backend) {
        Ok(pool) => pool,
        Err(message) => return job_error(conn, message),
    };
    match pool.try_submit(&conn.tenant, &spec, echo) {
        Ok(waiter) => {
            let accepted = frame(ResponseKind::Accepted, &[("id", Value::Num(id as f64))]);
            let _ = conn.writer.send(&accepted);
            let writer = conn.writer.clone();
            let tenant = conn.tenant.clone();
            let backend_name = backend.as_str().to_string();
            let run = move || {
                let reply = match waiter() {
                    Ok(outcome) => {
                        let mut members = vec![
                            ("id", Value::Num(id as f64)),
                            ("tenant", Value::Str(tenant)),
                            ("app", Value::Str(app)),
                            ("backend", Value::Str(backend_name)),
                            ("keys", Value::Num(outcome.keys as f64)),
                            ("digest", Value::Str(outcome.digest)),
                            ("queued_ms", Value::Num(outcome.queued_ms)),
                            ("ran_ms", Value::Num(outcome.ran_ms)),
                            ("metrics", outcome.metrics),
                        ];
                        if let Some(rendered) = outcome.rendered {
                            members.push(("output", Value::Str(rendered)));
                        }
                        frame(ResponseKind::Result, &members)
                    }
                    Err(err) => frame(
                        ResponseKind::JobError,
                        &[("id", Value::Num(id as f64)), ("error", Value::Str(err.to_string()))],
                    ),
                };
                // The client may be gone; nothing useful to do about it.
                let _ = writer.send(&reply);
            };
            if let Ok(handle) = thread::Builder::new().name("ramr-serve-job".into()).spawn(run) {
                conn.waiters.push(handle);
            }
            // On spawn failure (thread exhaustion) the closure is consumed
            // by the failed spawn; the ticket resolves at shutdown.
        }
        Err(err) => match err.shed_reason() {
            Some(reason) => {
                let status = pool.status();
                let hint = registry::retry_hint_ms(reason, conn.inner.config.retry_ms);
                let _ = conn.writer.send(&frame(
                    ResponseKind::RetryAfter,
                    &[
                        ("id", Value::Num(id as f64)),
                        ("reason", Value::Str(reason.as_str().into())),
                        ("retry_after_ms", Value::Num(hint as f64)),
                        ("queue_depth", Value::Num(status.queue_depth as f64)),
                        ("queue_capacity", Value::Num(status.queue_capacity as f64)),
                        ("saturated", Value::Bool(status.saturated)),
                    ],
                ));
            }
            None => job_error(conn, err.to_string()),
        },
    }
}

type ParsedSubmit = (String, Backend, WireSpec, bool, mr_core::RuntimeConfig, PoolKey);

/// Parses and validates a SUBMIT frame into everything the pool needs.
fn parse_submit(inner: &Inner, request: &Value) -> Result<ParsedSubmit, String> {
    let app = request
        .get("app")
        .and_then(Value::as_str)
        .ok_or("SUBMIT needs a string \"app\"")?
        .to_string();
    let platform = match request.get("platform").and_then(Value::as_str).unwrap_or("hwl") {
        "hwl" => Platform::Haswell,
        "phi" => Platform::XeonPhi,
        other => return Err(format!("unknown platform {other:?} (hwl|phi)")),
    };
    let flavor = match request.get("flavor").and_then(Value::as_str).unwrap_or("small") {
        "small" => InputFlavor::Small,
        "medium" => InputFlavor::Medium,
        "large" => InputFlavor::Large,
        other => return Err(format!("unknown flavor {other:?} (small|medium|large)")),
    };
    let scale = match request.get("scale") {
        None => DEFAULT_SCALE,
        Some(value) => {
            value.as_u64().filter(|&s| s > 0).ok_or("\"scale\" must be a positive integer")?
        }
    };
    let backend = match request.get("backend").and_then(Value::as_str) {
        None => inner.config.default_backend,
        Some(name) => name
            .parse::<Backend>()
            .map_err(|_| format!("unknown backend {name:?} (ramr-static|ramr-adaptive|phoenix)"))?,
    };
    let echo = request.get("echo_output").and_then(Value::as_bool).unwrap_or(false);

    // Knob overrides: ENV_KNOBS cli names, applied through the exact
    // parse/apply path `ramr run --<knob>` uses, on top of the server's
    // base config (with the app's preferred container as the default).
    let mut knobs: Vec<(String, String)> = Vec::new();
    if let Some(Value::Obj(members)) = request.get("knobs") {
        for (name, raw) in members {
            let raw =
                raw.as_str().ok_or_else(|| format!("knob {name:?} must map to a string value"))?;
            knobs.push((name.clone(), raw.to_string()));
        }
    }
    let mut builder = inner.config.base.clone().into_builder();
    if let Some(kind) = app_kind(&app) {
        builder = builder.container(kind.default_container());
    }
    for (name, raw) in &knobs {
        let knob = mr_core::ENV_KNOBS
            .iter()
            .find(|k| k.cli == name)
            .ok_or_else(|| format!("unknown knob {name:?} (use ENV_KNOBS cli names)"))?;
        let source = format!("knob {name}");
        builder = (knob.apply)(builder, raw, &source).map_err(|e| e.to_string())?;
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    let key = (app.clone(), backend.as_str().to_string(), knobs);
    Ok((app, backend, WireSpec { platform, flavor, scale }, echo, config, key))
}

fn app_kind(app: &str) -> Option<AppKind> {
    match app {
        "wc" => Some(AppKind::WordCount),
        "hg" => Some(AppKind::Histogram),
        "lr" => Some(AppKind::LinearRegression),
        "km" => Some(AppKind::Kmeans),
        _ => None,
    }
}
