//! The server: accept loop, per-connection protocol drivers, pool cache,
//! and the graceful-shutdown choreography.
//!
//! Thread structure (one box per thread kind):
//!
//! ```text
//! accept loop ──spawns──▶ connection driver ──spawns──▶ job waiter
//!   (1 per server)          (1 per client)              (1 per accepted job)
//! ```
//!
//! The connection driver owns the read side of its socket; the write side
//! is a **bounded outbound queue** drained by a per-connection writer
//! thread, so waiter threads interleave `RESULT` frames with the driver's
//! own replies without tearing frames — and a slow client that lets the
//! queue sit full past the write deadline is kicked rather than allowed
//! to wedge a waiter. Every blocking read carries a short timeout, which
//! doubles as the shutdown poll: when the stop flag rises, drivers finish
//! their waiters, say `BYE`, and exit; the accept loop joins them all
//! before [`Server::wait`] returns.
//!
//! Wire-level resilience is a per-tenant **dedup ledger**: a `SUBMIT`
//! carrying a `request_id` is recorded before admission, so the same id
//! re-sent after a reconnect re-attaches to the in-flight job (or replays
//! its parked terminal frame) instead of executing twice. Terminal frames
//! whose connection died park in the ledger until the tenant claims them
//! or the park TTL expires. The same ledger holds each tenant's
//! token-bucket rate limiter.
//!
//! Shutdown itself is one atomic take of the pool map: dropping a
//! [`ramr::JobScheduler`] lets the in-flight epoch finish and fulfils
//! every queued ticket with a shutdown error, so accepted jobs always
//! resolve to a `RESULT` or a `JOB_ERROR` — never silence.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use mr_apps::inputs::{InputFlavor, Platform, DEFAULT_SCALE};
use mr_apps::AppKind;
use ramr::{Backend, ShedReason, TenantStats};
use ramr_telemetry::json::Value;

use crate::proto::{self, RequestKind, ResponseKind, PROTOCOL_VERSION};
use crate::registry::{self, AppPool, WireSpec, POISON_APP, SERVABLE_APPS};
use crate::ServeConfig;

/// How often idle reads wake to poll the stop flag.
const POLL_TIMEOUT: Duration = Duration::from_millis(100);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_NAP: Duration = Duration::from_millis(20);

/// Frames a connection's outbound queue holds before senders must wait.
const OUTBOUND_QUEUE: usize = 64;

/// How long a sender waits for outbound-queue space (and the writer
/// thread waits on one socket write) before the client is declared too
/// slow and its connection is kicked. Kicked connections' terminal
/// frames park in the dedup ledger for reconnect pickup.
const WRITE_DEADLINE: Duration = Duration::from_secs(5);

/// A connection that negotiated a heartbeat and then stays silent for
/// this many intervals is dropped.
const HEARTBEAT_GRACE: u32 = 3;

/// Dedup-ledger entries one tenant may hold; beyond it the oldest
/// completed entry is evicted (and with no evictable entry, new
/// `request_id` submits are refused).
const DEDUP_CAP: usize = 1024;

/// A pool's identity: same app + backend + knob overrides ⇒ same pool.
type PoolKey = (String, String, Vec<(String, String)>);

/// One `request_id`'s place in the dedup ledger.
enum JobState {
    /// Accepted and running; `writer` is the connection the terminal
    /// frame should go to — rebound every time the tenant re-sends this
    /// `request_id` from a new connection.
    InFlight { writer: FrameWriter },
    /// Terminal frame produced. Kept (claimed or not) until the park TTL
    /// expires so a reconnecting client can always re-claim its result.
    Done { frame: Value, at: Instant, claimed: bool },
}

/// Per-tenant wire-resilience state: the dedup ledger, the rate bucket,
/// and the resilience counters the `METRICS` endpoint reports.
struct TenantLedger {
    jobs: BTreeMap<String, JobState>,
    /// Token-bucket level; refilled on every admission check.
    tokens: f64,
    last_refill: Instant,
    /// Whether this tenant has completed a HELLO before (the first one
    /// is a connect, every later one a reconnect).
    seen_hello: bool,
    reconnects: u64,
    dedup_hits: u64,
    parked: u64,
    expired: u64,
    rate_limited: u64,
}

impl TenantLedger {
    fn new(burst: f64) -> TenantLedger {
        TenantLedger {
            jobs: BTreeMap::new(),
            tokens: burst,
            last_refill: Instant::now(),
            seen_hello: false,
            reconnects: 0,
            dedup_hits: 0,
            parked: 0,
            expired: 0,
            rate_limited: 0,
        }
    }

    /// Drops `Done` entries older than `ttl`; an entry evicted without
    /// ever having been claimed counts as expired (its result was lost).
    fn sweep(&mut self, ttl: Duration) {
        let mut expired = 0;
        self.jobs.retain(|_, state| match state {
            JobState::InFlight { .. } => true,
            JobState::Done { at, claimed, .. } => {
                let keep = at.elapsed() < ttl;
                if !keep && !*claimed {
                    expired += 1;
                }
                keep
            }
        });
        self.expired += expired;
    }
}

struct Inner {
    config: ServeConfig,
    stop: AtomicBool,
    /// `None` once shutdown has taken (and dropped) the pools.
    pools: Mutex<Option<BTreeMap<PoolKey, Arc<dyn AppPool>>>>,
    /// Per-tenant dedup ledgers, rate buckets, and resilience counters.
    /// Never held across a `pools` lock (or vice versa): every path takes
    /// the two sequentially, so no lock order can deadlock.
    ledgers: Mutex<BTreeMap<String, TenantLedger>>,
}

impl Inner {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// One second of burst, but always at least one token.
    fn burst(&self) -> f64 {
        self.config.rate.max(1.0)
    }

    fn park_ttl(&self) -> Duration {
        Duration::from_millis(self.config.park_ttl_ms.max(1))
    }

    /// Runs `body` with the tenant's ledger (created on first touch),
    /// sweeping expired entries first.
    fn with_ledger<T>(&self, tenant: &str, body: impl FnOnce(&mut TenantLedger) -> T) -> T {
        let mut guard = self.ledgers.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let ledger =
            guard.entry(tenant.to_string()).or_insert_with(|| TenantLedger::new(self.burst()));
        ledger.sweep(self.park_ttl());
        body(ledger)
    }

    /// Counts a completed HELLO; returns the negotiated heartbeat
    /// interval (the client's proposal clamped by the server ceiling; 0
    /// when either side declines).
    fn note_hello(&self, tenant: &str, proposed_ms: u64) -> u64 {
        self.with_ledger(tenant, |ledger| {
            if ledger.seen_hello {
                ledger.reconnects += 1;
            }
            ledger.seen_hello = true;
        });
        if proposed_ms == 0 || self.config.heartbeat_ms == 0 {
            0
        } else {
            proposed_ms.min(self.config.heartbeat_ms)
        }
    }

    /// Token-bucket admission: `true` means the submit may proceed. A
    /// refusal is counted in the tenant's ledger (the pool-level stats
    /// are the caller's job, since the pool may not exist yet).
    fn rate_ok(&self, tenant: &str) -> bool {
        let rate = self.config.rate;
        if rate <= 0.0 {
            return true;
        }
        let burst = self.burst();
        self.with_ledger(tenant, |ledger| {
            let now = Instant::now();
            let elapsed = now.duration_since(ledger.last_refill).as_secs_f64();
            ledger.last_refill = now;
            ledger.tokens = (ledger.tokens + elapsed * rate).min(burst);
            if ledger.tokens >= 1.0 {
                ledger.tokens -= 1.0;
                true
            } else {
                ledger.rate_limited += 1;
                false
            }
        })
    }

    /// Routes a `request_id` job's terminal frame: sent to the
    /// connection currently bound to the id when possible, and retained
    /// in the ledger either way (claimed on success, parked on failure)
    /// so a reconnecting tenant can re-claim it until the TTL expires.
    fn deliver(&self, tenant: &str, rid: &str, reply: Value) {
        // The entry flips to Done *before* the send: the client may react
        // to the terminal frame instantly (query METRICS, re-submit), and
        // must never observe its own completed job as still in flight.
        let writer = self.with_ledger(tenant, |ledger| match ledger.jobs.get_mut(rid) {
            Some(state @ JobState::InFlight { .. }) => {
                let done =
                    JobState::Done { frame: reply.clone(), at: Instant::now(), claimed: true };
                match std::mem::replace(state, done) {
                    JobState::InFlight { writer } => Some(writer),
                    JobState::Done { .. } => None,
                }
            }
            _ => None,
        });
        // The send happens outside the ledger lock: a stalled client must
        // not block other tenants' submits for the write deadline.
        let sent = writer.is_some_and(|w| w.send(&reply).is_ok());
        if !sent {
            self.with_ledger(tenant, |ledger| {
                if let Some(JobState::Done { claimed, .. }) = ledger.jobs.get_mut(rid) {
                    *claimed = false;
                }
                ledger.parked += 1;
            });
        }
    }

    /// Removes a `request_id` reservation after an admission refusal,
    /// returning the connection currently bound to it (rebound by any
    /// duplicate that raced in) so the refusal reaches the live client.
    fn unreserve(&self, tenant: &str, rid: &str) -> Option<FrameWriter> {
        self.with_ledger(tenant, |ledger| match ledger.jobs.remove(rid) {
            Some(JobState::InFlight { writer }) => Some(writer),
            Some(done @ JobState::Done { .. }) => {
                // A racing duplicate cannot have completed the job — only
                // this call's submit path owns it — but keep the entry
                // rather than lose a terminal frame.
                ledger.jobs.insert(rid.to_string(), done);
                None
            }
            None => None,
        })
    }

    /// Finds or builds the pool for one submit. Building happens under
    /// the map lock, so two racing submits cannot double-spawn a pool.
    fn pool_for(
        &self,
        key: &PoolKey,
        config: &mr_core::RuntimeConfig,
        backend: Backend,
    ) -> Result<Arc<dyn AppPool>, String> {
        let mut guard = self.pools.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let pools = guard.as_mut().ok_or("server is shutting down")?;
        if let Some(pool) = pools.get(key) {
            return Ok(Arc::clone(pool));
        }
        if pools.len() >= self.config.max_pools {
            return Err(format!(
                "pool limit reached ({} of {}): reuse an existing app/backend/knob set \
                 or raise RAMR_SERVE_MAX_POOLS",
                pools.len(),
                self.config.max_pools
            ));
        }
        let pool = registry::make_pool(&key.0, backend, config.clone(), self.config.chaos)?;
        pools.insert(key.clone(), Arc::clone(&pool));
        Ok(pool)
    }

    /// Raises the stop flag and drops every pool. Dropping a scheduler
    /// drains its in-flight epoch and fulfils queued tickets with a
    /// shutdown error, so waiter threads resolve promptly.
    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let taken = self.pools.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        drop(taken);
    }

    /// The `METRICS_REPORT` frame: live gauges for every pool plus the
    /// per-tenant accounting (including the typed shed breakdown).
    fn metrics_frame(&self) -> Value {
        let guard = self.pools.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut pools = Vec::new();
        if let Some(map) = guard.as_ref() {
            for ((app, backend, knobs), pool) in map {
                let status = pool.status();
                let mut entry = BTreeMap::new();
                entry.insert("app".into(), Value::Str(app.clone()));
                entry.insert("backend".into(), Value::Str(backend.clone()));
                entry.insert(
                    "knobs".into(),
                    Value::Obj(
                        knobs.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect(),
                    ),
                );
                entry.insert("queue_depth".into(), Value::Num(status.queue_depth as f64));
                entry.insert("queue_capacity".into(), Value::Num(status.queue_capacity as f64));
                entry.insert("saturated".into(), Value::Bool(status.saturated));
                entry.insert(
                    "tenants".into(),
                    Value::Arr(pool.tenant_stats().iter().map(tenant_json).collect()),
                );
                pools.push(Value::Obj(entry));
            }
        }
        let shutting_down = guard.is_none();
        drop(guard);
        // Ledgers are taken after the pool guard is released — the two
        // locks never nest.
        let mut tenants = Vec::new();
        {
            let mut guard = self.ledgers.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for (name, ledger) in guard.iter_mut() {
                ledger.sweep(self.park_ttl());
                let inflight =
                    ledger.jobs.values().filter(|s| matches!(s, JobState::InFlight { .. })).count();
                let num = |n: u64| Value::Num(n as f64);
                tenants.push(Value::Obj(
                    [
                        ("tenant".to_string(), Value::Str(name.clone())),
                        ("reconnects".to_string(), num(ledger.reconnects)),
                        ("dedup_hits".to_string(), num(ledger.dedup_hits)),
                        ("parked".to_string(), num(ledger.parked)),
                        ("expired".to_string(), num(ledger.expired)),
                        ("rate_limited".to_string(), num(ledger.rate_limited)),
                        ("ledger_in_flight".to_string(), num(inflight as u64)),
                        ("ledger_entries".to_string(), num(ledger.jobs.len() as u64)),
                    ]
                    .into_iter()
                    .collect(),
                ));
            }
        }
        frame(
            ResponseKind::MetricsReport,
            &[
                ("shutting_down", Value::Bool(shutting_down)),
                ("pools", Value::Arr(pools)),
                ("tenants", Value::Arr(tenants)),
            ],
        )
    }

    /// The union of every pool's execution ledger: the tenant-scoped
    /// `request_id` tag of each dispatched wire job, in per-pool claim
    /// order. The chaos suite audits this for exactly-once execution.
    fn execution_ledger(&self) -> Vec<String> {
        let guard = self.pools.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut tags = Vec::new();
        if let Some(map) = guard.as_ref() {
            for pool in map.values() {
                tags.extend(pool.executed_tags());
            }
        }
        tags
    }
}

fn tenant_json(s: &TenantStats) -> Value {
    let ms = |d: std::time::Duration| Value::Num(d.as_secs_f64() * 1e3);
    let num = |n: u64| Value::Num(n as f64);
    Value::Obj(
        [
            ("tenant".to_string(), Value::Str(s.tenant.clone())),
            ("weight".to_string(), num(u64::from(s.weight))),
            ("submitted".to_string(), num(s.submitted)),
            ("completed".to_string(), num(s.completed)),
            ("failed".to_string(), num(s.failed)),
            ("shed".to_string(), num(s.shed)),
            ("shed_queue_full".to_string(), num(s.shed_queue_full)),
            ("shed_rate_limited".to_string(), num(s.shed_rate_limited)),
            ("shed_quota".to_string(), num(s.shed_quota)),
            ("shed_saturated".to_string(), num(s.shed_saturated)),
            ("queue_wait_ms".to_string(), ms(s.queue_wait)),
            ("max_queue_wait_ms".to_string(), ms(s.max_queue_wait)),
            ("run_time_ms".to_string(), ms(s.run_time)),
        ]
        .into_iter()
        .collect(),
    )
}

/// Builds a response frame: the kind's wire name plus the given members.
fn frame(kind: ResponseKind, members: &[(&str, Value)]) -> Value {
    let mut obj: BTreeMap<String, Value> =
        members.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect();
    obj.insert("type".into(), Value::Str(kind.as_str().into()));
    Value::Obj(obj)
}

/// The shared state behind one connection's outbound queue.
struct OutboundState {
    frames: VecDeque<Value>,
    /// Graceful close: no new sends, the writer drains what is queued.
    closing: bool,
    /// Broken socket or kicked slow client: sends fail, frames drop.
    dead: bool,
}

/// One connection's write side: a bounded frame queue drained by a
/// dedicated writer thread. Senders wait up to [`WRITE_DEADLINE`] for
/// space; a client that cannot drain the queue that long is kicked (its
/// socket is shut down, which also frees the reader), so one stalled
/// consumer can never wedge a waiter thread indefinitely.
struct Outbound {
    state: Mutex<OutboundState>,
    /// Senders park here for queue space.
    space: Condvar,
    /// The writer thread parks here for frames.
    work: Condvar,
    /// A handle kept solely to shut the socket down on kick/death.
    sock: TcpStream,
    max_frame: usize,
}

impl Outbound {
    fn kick(&self, state: &mut OutboundState) {
        state.dead = true;
        state.frames.clear();
        let _ = self.sock.shutdown(Shutdown::Both);
        self.space.notify_all();
        self.work.notify_all();
    }
}

/// A cloneable handle on a connection's outbound queue; waiter threads
/// and the connection driver interleave whole frames through it.
#[derive(Clone)]
struct FrameWriter {
    out: Arc<Outbound>,
}

impl FrameWriter {
    /// Enqueues one frame; delivery failures are returned (the driver
    /// closes on them, the ledger parks terminal frames on them) — a
    /// vanished or too-slow client cannot be told anything.
    fn send(&self, value: &Value) -> io::Result<()> {
        if value.to_json().len() > self.out.max_frame {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds bound"));
        }
        let deadline = Instant::now() + WRITE_DEADLINE;
        let mut state = self.out.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while !state.dead && !state.closing && state.frames.len() >= OUTBOUND_QUEUE {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                // Slow client: the queue sat full for the whole deadline.
                self.out.kick(&mut state);
                return Err(io::Error::new(io::ErrorKind::TimedOut, "client too slow"));
            }
            let (guard, _) = self
                .out
                .space
                .wait_timeout(state, left)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
        if state.dead || state.closing {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "connection closed"));
        }
        state.frames.push_back(value.clone());
        self.out.work.notify_one();
        Ok(())
    }

    /// Hard close for a vanished peer: marks the queue dead right away so
    /// waiter threads see their sends fail — and park terminal frames in
    /// the ledger — instead of writing into a closed socket's kernel
    /// buffer, where the frame would be silently discarded.
    fn abandon(&self) {
        let mut state = self.out.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        self.out.kick(&mut state);
    }

    /// Graceful close: lets the writer thread drain the queue and exit.
    fn finish(&self) {
        let mut state = self.out.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.closing = true;
        self.out.work.notify_all();
        self.out.space.notify_all();
    }
}

/// The writer thread: drains the outbound queue onto the socket. A write
/// error (or write-deadline overrun, via the socket write timeout) marks
/// the connection dead and shuts the socket down, waking the reader.
fn writer_loop(out: &Arc<Outbound>, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(WRITE_DEADLINE));
    loop {
        let frame = {
            let mut state = out.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if state.dead {
                    return;
                }
                if let Some(frame) = state.frames.pop_front() {
                    out.space.notify_all();
                    break frame;
                }
                if state.closing {
                    return;
                }
                state = out.work.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        if proto::write_frame(&mut stream, &frame, out.max_frame).is_err() {
            let mut state = out.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            out.kick(&mut state);
            return;
        }
    }
}

/// The running server. Binds on [`Server::bind`]; runs until
/// [`Server::shutdown`] (or a client's authorized `SHUTDOWN` frame);
/// [`Server::wait`] joins every thread the server spawned.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("stopping", &self.inner.stopping())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener and starts accepting connections.
    ///
    /// # Errors
    ///
    /// The bind/configuration error when the address is unusable.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            config,
            stop: AtomicBool::new(false),
            pools: Mutex::new(Some(BTreeMap::new())),
            ledgers: Mutex::new(BTreeMap::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = thread::Builder::new()
            .name("ramr-serve-accept".into())
            .spawn(move || accept_loop(&accept_inner, &listener))
            .map_err(|e| io::Error::other(format!("cannot spawn accept thread: {e}")))?;
        Ok(Server { inner, addr, accept: Some(accept) })
    }

    /// The bound address (resolves `HOST:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown: stop accepting, drain the in-flight
    /// epoch, fulfil queued tickets with a shutdown error, `BYE` every
    /// connection. Returns immediately; [`Server::wait`] blocks until the
    /// choreography completes.
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }

    /// Whether shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.stopping()
    }

    /// The scheduler-side execution ledger: every dispatched wire job's
    /// tenant-scoped `request_id` tag (`tenant:request_id`), across all
    /// pools, in per-pool claim order. Jobs submitted without a
    /// `request_id` are not recorded. The wire-resilience tests
    /// cross-check this against the set of submitted ids to prove
    /// exactly-once execution under connection churn.
    pub fn execution_ledger(&self) -> Vec<String> {
        self.inner.execution_ledger()
    }

    /// Blocks until the server has fully stopped (accept loop and every
    /// connection thread joined). Call [`Server::shutdown`] first — or
    /// rely on a client's `SHUTDOWN` frame — to make it stop.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.inner.shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    let mut drivers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !inner.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = Arc::clone(inner);
                let spawned = thread::Builder::new()
                    .name("ramr-serve-conn".into())
                    .spawn(move || drive_connection(&conn_inner, stream));
                match spawned {
                    Ok(handle) => drivers.push(handle),
                    Err(_) => { /* out of threads: drop the connection */ }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_NAP),
            Err(_) => thread::sleep(ACCEPT_NAP),
        }
        drivers.retain(|h| !h.is_finished());
    }
    for handle in drivers {
        let _ = handle.join();
    }
}

/// Everything one connection needs, bundled for the handlers.
struct Conn<'a> {
    inner: &'a Arc<Inner>,
    writer: FrameWriter,
    tenant: String,
    /// Waiter threads for this connection's accepted jobs.
    waiters: Vec<thread::JoinHandle<()>>,
}

fn drive_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TIMEOUT));
    let Ok(write_half) = stream.try_clone() else { return };
    let Ok(shutdown_half) = stream.try_clone() else { return };
    let out = Arc::new(Outbound {
        state: Mutex::new(OutboundState { frames: VecDeque::new(), closing: false, dead: false }),
        space: Condvar::new(),
        work: Condvar::new(),
        sock: shutdown_half,
        max_frame: inner.config.max_frame,
    });
    let writer = FrameWriter { out: Arc::clone(&out) };
    let writer_thread = {
        let out = Arc::clone(&out);
        thread::Builder::new()
            .name("ramr-serve-write".into())
            .spawn(move || writer_loop(&out, write_half))
    };
    let Ok(writer_thread) = writer_thread else { return };
    let mut reader = BufReader::new(stream);
    let max_frame = inner.config.max_frame;

    // Handshake: the first frame must be an authenticated HELLO. It may
    // propose a heartbeat interval; the negotiated value (clamped by the
    // server's ceiling) is echoed in WELCOME and enforced from then on.
    let mut heartbeat_ms = 0u64;
    let hello_outcome = loop {
        match proto::read_frame(&mut reader, max_frame) {
            Ok(Some(hello)) => match check_hello(inner, &hello) {
                Ok(tenant) => {
                    let proposed = hello.get("heartbeat_ms").and_then(Value::as_u64).unwrap_or(0);
                    heartbeat_ms = inner.note_hello(&tenant, proposed);
                    let apps: Vec<Value> = SERVABLE_APPS
                        .iter()
                        .map(|a| Value::Str((*a).into()))
                        .chain(inner.config.chaos.then(|| Value::Str(POISON_APP.into())))
                        .collect();
                    let welcome = frame(
                        ResponseKind::Welcome,
                        &[
                            ("tenant", Value::Str(tenant.clone())),
                            ("version", Value::Num(PROTOCOL_VERSION as f64)),
                            ("apps", Value::Arr(apps)),
                            ("heartbeat_ms", Value::Num(heartbeat_ms as f64)),
                        ],
                    );
                    if writer.send(&welcome).is_err() {
                        break None;
                    }
                    break Some(tenant);
                }
                Err(message) => {
                    let _ =
                        writer.send(&frame(ResponseKind::Error, &[("error", Value::Str(message))]));
                    break None;
                }
            },
            Ok(None) => break None,
            Err(e) if timed_out(&e) => {
                if inner.stopping() {
                    let _ = writer.send(&frame(ResponseKind::Bye, &[]));
                    break None;
                }
            }
            Err(_) => {
                let _ = writer.send(&frame(
                    ResponseKind::Error,
                    &[("error", Value::Str("malformed frame before HELLO".into()))],
                ));
                break None;
            }
        }
    };
    let Some(tenant) = hello_outcome else {
        writer.finish();
        let _ = writer_thread.join();
        return;
    };

    let mut conn = Conn { inner, writer, tenant, waiters: Vec::new() };
    // A heartbeat-negotiated connection that stays silent for
    // HEARTBEAT_GRACE intervals is declared dead; its terminal frames
    // park in the ledger for the reconnecting client to claim.
    let idle_deadline = (heartbeat_ms > 0)
        .then(|| Duration::from_millis(heartbeat_ms.saturating_mul(u64::from(HEARTBEAT_GRACE))));
    let mut last_heard = Instant::now();
    let mut peer_gone = false;
    loop {
        match proto::read_frame(&mut reader, max_frame) {
            Ok(Some(request)) => {
                last_heard = Instant::now();
                if !handle_request(&mut conn, &request) {
                    break;
                }
            }
            Ok(None) => {
                peer_gone = true; // client closed its write half
                break;
            }
            Err(e) if timed_out(&e) => {
                if conn.inner.stopping() {
                    break;
                }
                if idle_deadline.is_some_and(|d| last_heard.elapsed() > d) {
                    peer_gone = true; // missed heartbeats: the peer is gone
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = conn.writer.send(&frame(
                    ResponseKind::Error,
                    &[("error", Value::Str(format!("protocol error: {e}")))],
                ));
                break;
            }
            Err(_) => {
                peer_gone = true;
                break;
            }
        }
    }

    if peer_gone {
        // The socket is gone; kill the outbound *before* resolving the
        // waiters, so their terminal frames fail to send and park in the
        // ledger for the reconnecting client instead of vanishing into a
        // half-closed socket's kernel buffer.
        conn.writer.abandon();
    }
    // Resolve every in-flight job before saying goodbye, so a client that
    // reads until BYE has seen all of its RESULT / JOB_ERROR frames.
    for waiter in conn.waiters.drain(..) {
        let _ = waiter.join();
    }
    if !peer_gone {
        let _ = conn.writer.send(&frame(ResponseKind::Bye, &[]));
    }
    conn.writer.finish();
    let _ = writer_thread.join();
}

fn timed_out(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Validates a HELLO frame; returns the tenant name.
fn check_hello(inner: &Inner, hello: &Value) -> Result<String, String> {
    let kind = proto::frame_type(hello)?;
    if RequestKind::from_wire(kind) != Some(RequestKind::Hello) {
        return Err(format!("expected HELLO as the first frame, got {kind:?}"));
    }
    let tenant = hello
        .get("tenant")
        .and_then(Value::as_str)
        .filter(|t| !t.is_empty())
        .ok_or("HELLO needs a non-empty string \"tenant\"")?;
    check_token(inner, hello, "HELLO")?;
    Ok(tenant.to_string())
}

fn check_token(inner: &Inner, request: &Value, what: &str) -> Result<(), String> {
    if let Some(expected) = &inner.config.token {
        let presented = request.get("token").and_then(Value::as_str);
        if presented != Some(expected.as_str()) {
            return Err(format!("{what} rejected: bad or missing token"));
        }
    }
    Ok(())
}

/// Dispatches one steady-state request. Returns `false` when the
/// connection should close.
fn handle_request(conn: &mut Conn<'_>, request: &Value) -> bool {
    let kind = match proto::frame_type(request) {
        Ok(kind) => kind,
        Err(message) => {
            let _ =
                conn.writer.send(&frame(ResponseKind::Error, &[("error", Value::Str(message))]));
            return false;
        }
    };
    match RequestKind::from_wire(kind) {
        Some(RequestKind::Submit) => {
            handle_submit(conn, request);
            true
        }
        Some(RequestKind::Metrics) => conn.writer.send(&conn.inner.metrics_frame()).is_ok(),
        Some(RequestKind::Ping) => {
            // Heartbeat probe: echo the nonce (when given) back in PONG.
            let members = match request.get("nonce") {
                Some(nonce) => vec![("nonce", nonce.clone())],
                None => Vec::new(),
            };
            conn.writer.send(&frame(ResponseKind::Pong, &members)).is_ok()
        }
        Some(RequestKind::Shutdown) => {
            match check_token(conn.inner, request, "SHUTDOWN") {
                Ok(()) => {
                    // Dropping the pools resolves every in-flight ticket;
                    // the driver joins its waiters and BYEs on return.
                    conn.inner.shutdown();
                    false
                }
                Err(message) => {
                    let _ = conn
                        .writer
                        .send(&frame(ResponseKind::Error, &[("error", Value::Str(message))]));
                    true
                }
            }
        }
        Some(RequestKind::Hello) => {
            let _ = conn.writer.send(&frame(
                ResponseKind::Error,
                &[("error", Value::Str("already authenticated".into()))],
            ));
            false
        }
        None => {
            let _ = conn.writer.send(&frame(
                ResponseKind::Error,
                &[("error", Value::Str(format!("unknown request type {kind:?}")))],
            ));
            false
        }
    }
}

/// One SUBMIT: admission-check, then either spawn a waiter (ACCEPTED) or
/// answer RETRY_AFTER / JOB_ERROR. Job-scoped failures keep the
/// connection alive — only protocol-level breakage closes it.
///
/// A SUBMIT carrying a `request_id` goes through the dedup ledger:
/// * a known in-flight id re-binds delivery to this connection and is
///   re-ACCEPTED (never re-executed);
/// * a known completed id is re-ACCEPTED and its retained terminal frame
///   replayed;
/// * a fresh id is *reserved* before admission, so a duplicate racing in
///   from a reconnect can never double-execute the job.
fn handle_submit(conn: &mut Conn<'_>, request: &Value) {
    // Opportunistically reap finished waiters so long-lived connections
    // do not accumulate dead handles.
    conn.waiters.retain(|h| !h.is_finished());

    let id = request.get("id").and_then(Value::as_u64).unwrap_or(0);
    let rid = request.get("request_id").and_then(Value::as_str).map(str::to_string);
    let job_error_frame = |message: String| {
        frame(
            ResponseKind::JobError,
            &[("id", Value::Num(id as f64)), ("error", Value::Str(message))],
        )
    };
    let accepted_frame = frame(ResponseKind::Accepted, &[("id", Value::Num(id as f64))]);

    // Dedup / reservation, for request_id submits.
    if let Some(rid) = &rid {
        enum Hit {
            Rebound,
            Replay(Value),
            Full,
            Fresh,
        }
        let hit = conn.inner.with_ledger(&conn.tenant, |ledger| {
            match ledger.jobs.get_mut(rid) {
                Some(JobState::InFlight { writer }) => {
                    *writer = conn.writer.clone();
                    ledger.dedup_hits += 1;
                    Hit::Rebound
                }
                Some(JobState::Done { frame, claimed, .. }) => {
                    ledger.dedup_hits += 1;
                    *claimed = true;
                    Hit::Replay(frame.clone())
                }
                None => {
                    if ledger.jobs.len() >= DEDUP_CAP {
                        // Evict the oldest completed entry to make room.
                        let oldest = ledger
                            .jobs
                            .iter()
                            .filter_map(|(key, state)| match state {
                                JobState::Done { at, .. } => Some((*at, key.clone())),
                                JobState::InFlight { .. } => None,
                            })
                            .min();
                        match oldest {
                            Some((_, key)) => {
                                ledger.jobs.remove(&key);
                            }
                            None => return Hit::Full,
                        }
                    }
                    // Reserve before admission: a duplicate arriving from
                    // a reconnect now re-binds instead of re-submitting.
                    ledger
                        .jobs
                        .insert(rid.clone(), JobState::InFlight { writer: conn.writer.clone() });
                    Hit::Fresh
                }
            }
        });
        match hit {
            Hit::Rebound => {
                let _ = conn.writer.send(&accepted_frame);
                return;
            }
            Hit::Replay(reply) => {
                let _ = conn.writer.send(&accepted_frame);
                let _ = conn.writer.send(&reply);
                return;
            }
            Hit::Full => {
                let _ = conn.writer.send(&job_error_frame(format!(
                    "dedup ledger full ({DEDUP_CAP} in-flight request_ids)"
                )));
                return;
            }
            Hit::Fresh => {}
        }
    }

    // A terminal refusal for a reserved id: deliver to whichever
    // connection the id is bound to now and retain it as the id's
    // outcome (a later duplicate replays it instead of re-running).
    let refuse_terminal = |conn: &Conn<'_>, reply: Value| match &rid {
        Some(rid) => conn.inner.deliver(&conn.tenant, rid, reply),
        None => {
            let _ = conn.writer.send(&reply);
        }
    };
    // A retryable refusal: drop the reservation (the client is expected
    // to re-submit the same id afresh) and answer the live connection.
    let refuse_retryable = |conn: &Conn<'_>, reply: Value| {
        let writer = rid
            .as_ref()
            .and_then(|rid| conn.inner.unreserve(&conn.tenant, rid))
            .unwrap_or_else(|| conn.writer.clone());
        let _ = writer.send(&reply);
    };

    let parsed = parse_submit(conn.inner, request);
    let (app, backend, spec, echo, config, key) = match parsed {
        Ok(parts) => parts,
        Err(message) => return refuse_terminal(conn, job_error_frame(message)),
    };
    let pool = match conn.inner.pool_for(&key, &config, backend) {
        Ok(pool) => pool,
        Err(message) => return refuse_terminal(conn, job_error_frame(message)),
    };

    let retry_after = |reason: ShedReason| {
        let status = pool.status();
        let hint = registry::retry_hint_ms(reason, conn.inner.config.retry_ms);
        frame(
            ResponseKind::RetryAfter,
            &[
                ("id", Value::Num(id as f64)),
                ("reason", Value::Str(reason.as_str().into())),
                ("retry_after_ms", Value::Num(hint as f64)),
                ("queue_depth", Value::Num(status.queue_depth as f64)),
                ("queue_capacity", Value::Num(status.queue_capacity as f64)),
                ("saturated", Value::Bool(status.saturated)),
            ],
        )
    };

    // Rate limiting layers *under* the scheduler's own admission: the
    // token bucket is charged per fresh submit (dedup re-attaches above
    // never reach here), and a refusal sheds exactly like the scheduler's
    // own reasons — typed, counted, and carrying a retry hint.
    if !conn.inner.rate_ok(&conn.tenant) {
        pool.record_shed(&conn.tenant, ShedReason::RateLimited);
        return refuse_retryable(conn, retry_after(ShedReason::RateLimited));
    }

    let tag = rid.as_ref().map(|rid| format!("{}:{rid}", conn.tenant));
    match pool.try_submit(&conn.tenant, &spec, echo, tag.as_deref()) {
        Ok(waiter) => {
            let _ = conn.writer.send(&accepted_frame);
            let writer = conn.writer.clone();
            let tenant = conn.tenant.clone();
            let backend_name = backend.as_str().to_string();
            let inner = Arc::clone(conn.inner);
            let rid = rid.clone();
            let run = move || {
                let reply = match waiter() {
                    Ok(outcome) => {
                        let mut members = vec![
                            ("id", Value::Num(id as f64)),
                            ("tenant", Value::Str(tenant.clone())),
                            ("app", Value::Str(app)),
                            ("backend", Value::Str(backend_name)),
                            ("keys", Value::Num(outcome.keys as f64)),
                            ("digest", Value::Str(outcome.digest)),
                            ("queued_ms", Value::Num(outcome.queued_ms)),
                            ("ran_ms", Value::Num(outcome.ran_ms)),
                            ("metrics", outcome.metrics),
                        ];
                        if let Some(rid) = &rid {
                            members.push(("request_id", Value::Str(rid.clone())));
                        }
                        if let Some(rendered) = outcome.rendered {
                            members.push(("output", Value::Str(rendered)));
                        }
                        frame(ResponseKind::Result, &members)
                    }
                    Err(err) => {
                        let mut members = vec![
                            ("id", Value::Num(id as f64)),
                            ("error", Value::Str(err.to_string())),
                        ];
                        if let Some(rid) = &rid {
                            members.push(("request_id", Value::Str(rid.clone())));
                        }
                        frame(ResponseKind::JobError, &members)
                    }
                };
                match &rid {
                    // Ledgered job: route through the dedup ledger so a
                    // vanished client's terminal frame parks for pickup.
                    Some(rid) => inner.deliver(&tenant, rid, reply),
                    // Legacy (no request_id): the client may be gone;
                    // nothing useful to do about it.
                    None => {
                        let _ = writer.send(&reply);
                    }
                }
            };
            if let Ok(handle) = thread::Builder::new().name("ramr-serve-job".into()).spawn(run) {
                conn.waiters.push(handle);
            }
            // On spawn failure (thread exhaustion) the closure is consumed
            // by the failed spawn; the ticket resolves at shutdown.
        }
        Err(err) => match err.shed_reason() {
            Some(reason) => refuse_retryable(conn, retry_after(reason)),
            None => refuse_terminal(conn, job_error_frame(err.to_string())),
        },
    }
}

type ParsedSubmit = (String, Backend, WireSpec, bool, mr_core::RuntimeConfig, PoolKey);

/// Parses and validates a SUBMIT frame into everything the pool needs.
fn parse_submit(inner: &Inner, request: &Value) -> Result<ParsedSubmit, String> {
    let app = request
        .get("app")
        .and_then(Value::as_str)
        .ok_or("SUBMIT needs a string \"app\"")?
        .to_string();
    let platform = match request.get("platform").and_then(Value::as_str).unwrap_or("hwl") {
        "hwl" => Platform::Haswell,
        "phi" => Platform::XeonPhi,
        other => return Err(format!("unknown platform {other:?} (hwl|phi)")),
    };
    let flavor = match request.get("flavor").and_then(Value::as_str).unwrap_or("small") {
        "small" => InputFlavor::Small,
        "medium" => InputFlavor::Medium,
        "large" => InputFlavor::Large,
        other => return Err(format!("unknown flavor {other:?} (small|medium|large)")),
    };
    let scale = match request.get("scale") {
        None => DEFAULT_SCALE,
        Some(value) => {
            value.as_u64().filter(|&s| s > 0).ok_or("\"scale\" must be a positive integer")?
        }
    };
    let backend = match request.get("backend").and_then(Value::as_str) {
        None => inner.config.default_backend,
        Some(name) => name
            .parse::<Backend>()
            .map_err(|_| format!("unknown backend {name:?} (ramr-static|ramr-adaptive|phoenix)"))?,
    };
    let echo = request.get("echo_output").and_then(Value::as_bool).unwrap_or(false);

    // Knob overrides: ENV_KNOBS cli names, applied through the exact
    // parse/apply path `ramr run --<knob>` uses, on top of the server's
    // base config (with the app's preferred container as the default).
    let mut knobs: Vec<(String, String)> = Vec::new();
    if let Some(Value::Obj(members)) = request.get("knobs") {
        for (name, raw) in members {
            let raw =
                raw.as_str().ok_or_else(|| format!("knob {name:?} must map to a string value"))?;
            knobs.push((name.clone(), raw.to_string()));
        }
    }
    let mut builder = inner.config.base.clone().into_builder();
    if let Some(kind) = app_kind(&app) {
        builder = builder.container(kind.default_container());
    }
    for (name, raw) in &knobs {
        let knob = mr_core::ENV_KNOBS
            .iter()
            .find(|k| k.cli == name)
            .ok_or_else(|| format!("unknown knob {name:?} (use ENV_KNOBS cli names)"))?;
        let source = format!("knob {name}");
        builder = (knob.apply)(builder, raw, &source).map_err(|e| e.to_string())?;
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    let key = (app.clone(), backend.as_str().to_string(), knobs);
    Ok((app, backend, WireSpec { platform, flavor, scale }, echo, config, key))
}

fn app_kind(app: &str) -> Option<AppKind> {
    match app {
        "wc" => Some(AppKind::WordCount),
        "hg" => Some(AppKind::Histogram),
        "lr" => Some(AppKind::LinearRegression),
        "km" => Some(AppKind::Kmeans),
        _ => None,
    }
}
