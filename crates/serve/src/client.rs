//! The client library behind `ramr client`, the socket tests, and the
//! job-flood bench.
//!
//! [`ServeClient`] is a synchronous, single-connection handle: connect +
//! `HELLO` in [`ServeClient::connect`], then [`submit`](ServeClient::submit)
//! / [`next_result`](ServeClient::next_result) (or the one-call
//! [`run_job`](ServeClient::run_job) which retries through backpressure),
//! [`metrics`](ServeClient::metrics), and
//! [`shutdown`](ServeClient::shutdown). Because results stream back
//! asynchronously, frames can arrive out of the order this client asks
//! for them; a small pending queue reorders them, so e.g. a `RESULT`
//! landing while we wait for a `METRICS_REPORT` is kept, not lost.

use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::time::Duration;

use ramr_telemetry::json::Value;

use crate::proto::{self, RequestKind, ResponseKind, PROTOCOL_VERSION};

/// Everything that can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server sent something this client cannot make sense of.
    Protocol(String),
    /// The server answered with an `ERROR` frame (auth, unknown app, ...).
    Remote(String),
    /// A submit was shed; carries the server's typed reason and hint.
    Shed {
        /// The wire reason (`queue-full` / `quota` / `saturated`).
        reason: String,
        /// The server's suggested wait before retrying.
        retry_after_ms: u64,
    },
    /// The job ran (or was queued) and failed; carries the server's
    /// `JOB_ERROR` message.
    JobFailed(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Remote(m) => write!(f, "server refused: {m}"),
            ServeError::Shed { reason, retry_after_ms } => {
                write!(f, "job shed ({reason}); retry after {retry_after_ms} ms")
            }
            ServeError::JobFailed(m) => write!(f, "job failed: {m}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// One job to submit: the wire-side mirror of a `ramr run` invocation.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// App wire name (`wc` / `hg` / `lr` / `km`, `poison` in chaos mode).
    pub app: String,
    /// Paper platform of the Table I row (`hwl` / `phi`).
    pub platform: String,
    /// Input flavor (`small` / `medium` / `large`).
    pub flavor: String,
    /// Scale divisor over Table I (larger = smaller input).
    pub scale: u64,
    /// Backend override; `None` uses the server's default.
    pub backend: Option<String>,
    /// Per-job knob overrides: `ENV_KNOBS` cli names → raw values.
    pub knobs: Vec<(String, String)>,
    /// Ask the server to echo the full rendered output in the `RESULT`.
    pub echo_output: bool,
}

impl JobRequest {
    /// A request for `app` with the CLI's defaults (hwl / small /
    /// scale 2000, server-default backend, no overrides).
    pub fn new(app: &str) -> JobRequest {
        JobRequest {
            app: app.to_string(),
            platform: "hwl".into(),
            flavor: "small".into(),
            scale: mr_apps::inputs::DEFAULT_SCALE,
            backend: None,
            knobs: Vec::new(),
            echo_output: false,
        }
    }
}

/// One completed job as reported over the wire.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The submit id this result answers.
    pub id: u64,
    /// Distinct keys in the reduced output.
    pub keys: u64,
    /// FNV-1a 64 digest of the canonical rendering (hex).
    pub digest: String,
    /// The rendered output, when the submit asked for an echo.
    pub output: Option<String>,
    /// Milliseconds the job spent queued.
    pub queued_ms: f64,
    /// Milliseconds the epoch ran.
    pub ran_ms: f64,
    /// How many `RETRY_AFTER` responses the submit absorbed before being
    /// accepted (only counted by [`ServeClient::run_job`]).
    pub sheds: u64,
    /// The full `--metrics-json` report for the run.
    pub metrics: Value,
}

/// A synchronous client connection, authenticated as one tenant.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_frame: usize,
    next_id: u64,
    /// Frames read while waiting for a different kind.
    pending: VecDeque<Value>,
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient").field("next_id", &self.next_id).finish_non_exhaustive()
    }
}

impl ServeClient {
    /// Connects to `addr` and authenticates as `tenant`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when the server refuses the handshake
    /// (bad token), [`ServeError::Io`]/[`ServeError::Protocol`] on
    /// transport trouble.
    pub fn connect(
        addr: &str,
        tenant: &str,
        token: Option<&str>,
    ) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        let mut client = ServeClient {
            reader: BufReader::new(stream),
            writer,
            max_frame: 4 << 20,
            next_id: 1,
            pending: VecDeque::new(),
        };
        let mut hello = vec![
            ("type", Value::Str(RequestKind::Hello.as_str().into())),
            ("tenant", Value::Str(tenant.into())),
            ("version", Value::Num(PROTOCOL_VERSION as f64)),
        ];
        if let Some(token) = token {
            hello.push(("token", Value::Str(token.into())));
        }
        client.send(&hello)?;
        let welcome = client.read_kind(&[ResponseKind::Welcome])?;
        debug_assert_eq!(welcome.get("tenant").and_then(Value::as_str), Some(tenant));
        Ok(client)
    }

    /// Submits one job without retrying. Returns the assigned submit id;
    /// the result arrives later via [`next_result`](Self::next_result).
    ///
    /// # Errors
    ///
    /// [`ServeError::Shed`] when admission control refused it (retry
    /// after the carried hint), [`ServeError::JobFailed`] when the server
    /// rejected the job spec itself.
    pub fn submit(&mut self, request: &JobRequest) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut members = vec![
            ("type", Value::Str(RequestKind::Submit.as_str().into())),
            ("id", Value::Num(id as f64)),
            ("app", Value::Str(request.app.clone())),
            ("platform", Value::Str(request.platform.clone())),
            ("flavor", Value::Str(request.flavor.clone())),
            ("scale", Value::Num(request.scale as f64)),
        ];
        if let Some(backend) = &request.backend {
            members.push(("backend", Value::Str(backend.clone())));
        }
        if request.echo_output {
            members.push(("echo_output", Value::Bool(true)));
        }
        let knobs: std::collections::BTreeMap<String, Value> =
            request.knobs.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect();
        let knobs = Value::Obj(knobs);
        let mut frame: Vec<(&str, Value)> = members;
        frame.push(("knobs", knobs));
        self.send(&frame)?;
        let reply = self.read_kind(&[
            ResponseKind::Accepted,
            ResponseKind::RetryAfter,
            ResponseKind::JobError,
        ])?;
        match proto::frame_type(&reply).map_err(ServeError::Protocol)? {
            "ACCEPTED" => Ok(id),
            "RETRY_AFTER" => Err(ServeError::Shed {
                reason: reply
                    .get("reason")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                retry_after_ms: reply.get("retry_after_ms").and_then(Value::as_u64).unwrap_or(50),
            }),
            _ => Err(ServeError::JobFailed(
                reply.get("error").and_then(Value::as_str).unwrap_or("unspecified").to_string(),
            )),
        }
    }

    /// Blocks for the next `RESULT` (any id), converting `JOB_ERROR`
    /// frames into [`ServeError::JobFailed`].
    pub fn next_result(&mut self) -> Result<JobResult, ServeError> {
        let reply = self.read_kind(&[ResponseKind::Result, ResponseKind::JobError])?;
        match proto::frame_type(&reply).map_err(ServeError::Protocol)? {
            "RESULT" => parse_result(&reply),
            _ => Err(ServeError::JobFailed(
                reply.get("error").and_then(Value::as_str).unwrap_or("unspecified").to_string(),
            )),
        }
    }

    /// Submits one job end to end: retries through `RETRY_AFTER`
    /// backpressure (sleeping the server's hint each time, up to
    /// `max retries` = 1000) and blocks for the matching result.
    ///
    /// # Errors
    ///
    /// [`ServeError::JobFailed`] when the job ran and failed;
    /// [`ServeError::Shed`] only if the retry budget is exhausted.
    pub fn run_job(&mut self, request: &JobRequest) -> Result<JobResult, ServeError> {
        let mut sheds = 0u64;
        let id = loop {
            match self.submit(request) {
                Ok(id) => break id,
                Err(ServeError::Shed { retry_after_ms, reason }) => {
                    sheds += 1;
                    if sheds > 1000 {
                        return Err(ServeError::Shed { reason, retry_after_ms });
                    }
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                Err(other) => return Err(other),
            }
        };
        loop {
            let mut result = self.next_result()?;
            if result.id == id {
                result.sheds = sheds;
                return Ok(result);
            }
            // A result for an earlier overlapping submit: keep it for a
            // later next_result call.
            self.pending.push_back(result_to_frame(&result));
        }
    }

    /// Fetches the live telemetry snapshot (`METRICS` →
    /// `METRICS_REPORT`), returned as the parsed JSON frame.
    pub fn metrics(&mut self) -> Result<Value, ServeError> {
        self.send(&[("type", Value::Str(RequestKind::Metrics.as_str().into()))])?;
        self.read_kind(&[ResponseKind::MetricsReport])
    }

    /// Asks the server to shut down gracefully and reads until `BYE`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when the server refuses (bad token).
    pub fn shutdown(&mut self, token: Option<&str>) -> Result<(), ServeError> {
        let mut members = vec![("type", Value::Str(RequestKind::Shutdown.as_str().into()))];
        if let Some(token) = token {
            members.push(("token", Value::Str(token.into())));
        }
        self.send(&members)?;
        self.read_kind(&[ResponseKind::Bye]).map(|_| ())
    }

    fn send(&mut self, members: &[(&str, Value)]) -> Result<(), ServeError> {
        let obj: std::collections::BTreeMap<String, Value> =
            members.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect();
        proto::write_frame(&mut self.writer, &Value::Obj(obj), self.max_frame)?;
        Ok(())
    }

    /// Reads frames until one of `kinds` arrives, parking other response
    /// kinds in the pending queue. `ERROR` frames surface as
    /// [`ServeError::Remote`] regardless of what was asked for.
    fn read_kind(&mut self, kinds: &[ResponseKind]) -> Result<Value, ServeError> {
        let accepts = |frame: &Value| {
            proto::frame_type(frame)
                .ok()
                .and_then(ResponseKind::from_wire)
                .is_some_and(|k| kinds.contains(&k))
        };
        if let Some(at) = self.pending.iter().position(accepts) {
            return Ok(self.pending.remove(at).expect("position just found"));
        }
        loop {
            let frame = match proto::read_frame(&mut self.reader, self.max_frame) {
                Ok(Some(frame)) => frame,
                Ok(None) => {
                    return Err(ServeError::Protocol("server closed the connection".into()))
                }
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    continue
                }
                Err(e) => return Err(ServeError::Io(e)),
            };
            let kind = proto::frame_type(&frame).map_err(ServeError::Protocol)?.to_string();
            if accepts(&frame) {
                return Ok(frame);
            }
            match ResponseKind::from_wire(&kind) {
                Some(ResponseKind::Error) => {
                    return Err(ServeError::Remote(
                        frame
                            .get("error")
                            .and_then(Value::as_str)
                            .unwrap_or("unspecified")
                            .to_string(),
                    ));
                }
                Some(_) => self.pending.push_back(frame),
                None => {
                    return Err(ServeError::Protocol(format!("unknown response kind {kind:?}")))
                }
            }
        }
    }
}

fn parse_result(frame: &Value) -> Result<JobResult, ServeError> {
    let field_u64 = |name: &str| {
        frame
            .get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| ServeError::Protocol(format!("RESULT missing numeric {name:?}")))
    };
    let field_f64 = |name: &str| {
        frame
            .get(name)
            .and_then(Value::as_f64)
            .ok_or_else(|| ServeError::Protocol(format!("RESULT missing numeric {name:?}")))
    };
    Ok(JobResult {
        id: field_u64("id")?,
        keys: field_u64("keys")?,
        digest: frame
            .get("digest")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::Protocol("RESULT missing digest".into()))?
            .to_string(),
        output: frame.get("output").and_then(Value::as_str).map(str::to_string),
        queued_ms: field_f64("queued_ms")?,
        ran_ms: field_f64("ran_ms")?,
        sheds: 0,
        metrics: frame.get("metrics").cloned().unwrap_or(Value::Null),
    })
}

/// Re-frames a parsed result so it can sit in the pending queue next to
/// raw frames (used when results arrive out of submit order).
fn result_to_frame(result: &JobResult) -> Value {
    let mut obj = std::collections::BTreeMap::new();
    obj.insert("type".into(), Value::Str(ResponseKind::Result.as_str().into()));
    obj.insert("id".into(), Value::Num(result.id as f64));
    obj.insert("keys".into(), Value::Num(result.keys as f64));
    obj.insert("digest".into(), Value::Str(result.digest.clone()));
    if let Some(output) = &result.output {
        obj.insert("output".into(), Value::Str(output.clone()));
    }
    obj.insert("queued_ms".into(), Value::Num(result.queued_ms));
    obj.insert("ran_ms".into(), Value::Num(result.ran_ms));
    obj.insert("metrics".into(), result.metrics.clone());
    Value::Obj(obj)
}
