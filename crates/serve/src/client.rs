//! The client library behind `ramr client`, the socket tests, and the
//! job-flood bench.
//!
//! [`ServeClient`] is a synchronous handle over (possibly several
//! consecutive) connections: connect + `HELLO` in
//! [`ServeClient::connect`], then [`submit`](ServeClient::submit) /
//! [`next_result`](ServeClient::next_result) (or the one-call
//! [`run_job`](ServeClient::run_job) which retries through
//! backpressure), [`metrics`](ServeClient::metrics), and
//! [`shutdown`](ServeClient::shutdown). Because results stream back
//! asynchronously, frames can arrive out of the order this client asks
//! for them; a small pending queue reorders them, so e.g. a `RESULT`
//! landing while we wait for a `METRICS_REPORT` is kept, not lost.
//!
//! # Exactly-once across reconnects
//!
//! Every `SUBMIT` is stamped with a durable `request_id` and recorded
//! before the first byte leaves the socket. When the connection dies
//! mid-job (and [`ClientOptions::reconnect`] is on, the default), the
//! client re-dials with decorrelated-jitter backoff, re-`HELLO`s, and
//! re-sends the recorded `SUBMIT` frames verbatim. The server's dedup
//! ledger recognises the `request_id`s and re-attaches the jobs instead
//! of re-executing them; terminal frames that raced the disconnect are
//! replayed from the server's parking ledger. The client in turn keeps a
//! bounded set of completed `request_id`s so a replayed terminal frame
//! it already consumed is counted ([`ServeClient::duplicate_terminals`])
//! and dropped, never surfaced twice.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ramr_telemetry::json::Value;

use crate::proto::{self, RequestKind, ResponseKind, PROTOCOL_VERSION};

/// Ceiling for the decorrelated-jitter backoff between shed retries in
/// [`ServeClient::run_job`] and between reconnect attempts.
pub const BACKOFF_CAP_MS: u64 = 2_000;

/// How many completed `request_id`s the client remembers for duplicate
/// suppression before forgetting the oldest.
const COMPLETED_CAP: usize = 4_096;

/// Socket read timeout while waiting for frames: short enough to notice
/// a due heartbeat and poll for recovery, long enough not to spin.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Everything that can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server sent something this client cannot make sense of.
    Protocol(String),
    /// The server answered with an `ERROR` frame (auth, unknown app, ...).
    Remote(String),
    /// A submit was shed; carries the server's typed reason and hint.
    Shed {
        /// The wire reason (`queue-full` / `rate-limited` / `quota` /
        /// `saturated`).
        reason: String,
        /// The server's suggested wait before retrying.
        retry_after_ms: u64,
    },
    /// The job ran (or was queued) and failed; carries the server's
    /// `JOB_ERROR` message.
    JobFailed(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Remote(m) => write!(f, "server refused: {m}"),
            ServeError::Shed { reason, retry_after_ms } => {
                write!(f, "job shed ({reason}); retry after {retry_after_ms} ms")
            }
            ServeError::JobFailed(m) => write!(f, "job failed: {m}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// One job to submit: the wire-side mirror of a `ramr run` invocation.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// App wire name (`wc` / `hg` / `lr` / `km`, `poison` in chaos mode).
    pub app: String,
    /// Paper platform of the Table I row (`hwl` / `phi`).
    pub platform: String,
    /// Input flavor (`small` / `medium` / `large`).
    pub flavor: String,
    /// Scale divisor over Table I (larger = smaller input).
    pub scale: u64,
    /// Backend override; `None` uses the server's default.
    pub backend: Option<String>,
    /// Per-job knob overrides: `ENV_KNOBS` cli names → raw values.
    pub knobs: Vec<(String, String)>,
    /// Ask the server to echo the full rendered output in the `RESULT`.
    pub echo_output: bool,
}

impl JobRequest {
    /// A request for `app` with the CLI's defaults (hwl / small /
    /// scale 2000, server-default backend, no overrides).
    pub fn new(app: &str) -> JobRequest {
        JobRequest {
            app: app.to_string(),
            platform: "hwl".into(),
            flavor: "small".into(),
            scale: mr_apps::inputs::DEFAULT_SCALE,
            backend: None,
            knobs: Vec::new(),
            echo_output: false,
        }
    }
}

/// One completed job as reported over the wire.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The submit id this result answers.
    pub id: u64,
    /// The durable dedup id the client stamped on the `SUBMIT`, echoed
    /// back by the server (`None` on frames from pre-dedup servers).
    pub request_id: Option<String>,
    /// Distinct keys in the reduced output.
    pub keys: u64,
    /// FNV-1a 64 digest of the canonical rendering (hex).
    pub digest: String,
    /// The rendered output, when the submit asked for an echo.
    pub output: Option<String>,
    /// Milliseconds the job spent queued.
    pub queued_ms: f64,
    /// Milliseconds the epoch ran.
    pub ran_ms: f64,
    /// How many `RETRY_AFTER` responses the submit absorbed before being
    /// accepted (only counted by [`ServeClient::run_job`]).
    pub sheds: u64,
    /// The full `--metrics-json` report for the run.
    pub metrics: Value,
}

/// Tuning for a [`ServeClient`]: reconnect policy and heartbeat.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Re-dial and resume in-flight `request_id`s when the connection
    /// dies mid-job. On by default; turn off to surface raw socket
    /// errors (the pre-resilience behavior).
    pub reconnect: bool,
    /// How many consecutive re-dials to attempt before giving up and
    /// surfacing the original error.
    pub max_reconnect_attempts: u32,
    /// First-retry floor for the decorrelated-jitter backoff, in ms.
    pub backoff_base_ms: u64,
    /// Backoff ceiling in ms (both reconnects and shed retries).
    pub backoff_cap_ms: u64,
    /// Heartbeat interval to propose in `HELLO`, in ms. `0` (the
    /// default) proposes none; otherwise the server answers with
    /// `min(proposal, server ceiling)` and both sides enforce it.
    pub heartbeat_ms: u64,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            reconnect: true,
            max_reconnect_attempts: 8,
            backoff_base_ms: 50,
            backoff_cap_ms: BACKOFF_CAP_MS,
            heartbeat_ms: 0,
        }
    }
}

/// One live socket: the buffered read half and the raw write half.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A synchronous client, authenticated as one tenant, that survives
/// connection churn (see the module docs for the resume protocol).
pub struct ServeClient {
    addr: String,
    tenant: String,
    token: Option<String>,
    opts: ClientOptions,
    conn: Conn,
    max_frame: usize,
    next_id: u64,
    /// Session-unique prefix baked into every `request_id` so ids from
    /// different client processes of the same tenant never collide.
    nonce: u64,
    /// XorShift64 state feeding the backoff jitter and ping nonces.
    rng: u64,
    /// Heartbeat interval negotiated in the latest `WELCOME` (0 = off).
    heartbeat_ms: u64,
    /// When the last frame left this client (heartbeat bookkeeping).
    last_write: Instant,
    /// `SUBMIT` frames sent but not yet terminally answered, by submit
    /// id; re-sent verbatim after a reconnect.
    inflight: BTreeMap<u64, Value>,
    /// Frames read while waiting for a different kind.
    pending: VecDeque<Value>,
    /// Completed `request_id`s (bounded by `COMPLETED_CAP`): terminal
    /// frames seen again after a replay are dropped, not re-surfaced.
    completed: BTreeSet<String>,
    completed_order: VecDeque<String>,
    reconnects: u64,
    duplicate_terminals: u64,
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient")
            .field("next_id", &self.next_id)
            .field("reconnects", &self.reconnects)
            .finish_non_exhaustive()
    }
}

impl ServeClient {
    /// Connects to `addr` and authenticates as `tenant`, with default
    /// [`ClientOptions`] (auto-reconnect on, no heartbeat).
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when the server refuses the handshake
    /// (bad token), [`ServeError::Io`]/[`ServeError::Protocol`] on
    /// transport trouble.
    pub fn connect(
        addr: &str,
        tenant: &str,
        token: Option<&str>,
    ) -> Result<ServeClient, ServeError> {
        ServeClient::connect_with(addr, tenant, token, ClientOptions::default())
    }

    /// [`connect`](Self::connect) with explicit reconnect/heartbeat
    /// tuning.
    ///
    /// # Errors
    ///
    /// As [`connect`](Self::connect); the initial dial is never retried,
    /// only established sessions recover.
    pub fn connect_with(
        addr: &str,
        tenant: &str,
        token: Option<&str>,
        opts: ClientOptions,
    ) -> Result<ServeClient, ServeError> {
        let (conn, heartbeat_ms) = dial(addr, tenant, token, opts.heartbeat_ms, 4 << 20)?;
        let nonce = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
            ^ (u64::from(std::process::id()) << 32);
        Ok(ServeClient {
            addr: addr.to_string(),
            tenant: tenant.to_string(),
            token: token.map(str::to_string),
            opts,
            conn,
            max_frame: 4 << 20,
            next_id: 1,
            nonce,
            rng: nonce | 1,
            heartbeat_ms,
            last_write: Instant::now(),
            inflight: BTreeMap::new(),
            pending: VecDeque::new(),
            completed: BTreeSet::new(),
            completed_order: VecDeque::new(),
            reconnects: 0,
            duplicate_terminals: 0,
        })
    }

    /// How many times this client re-dialed and resumed after losing an
    /// established connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// How many terminal frames arrived for a `request_id` that was
    /// already completed (replays absorbed by dedup, never surfaced).
    pub fn duplicate_terminals(&self) -> u64 {
        self.duplicate_terminals
    }

    /// Submits one job without retrying. Returns the assigned submit id;
    /// the result arrives later via [`next_result`](Self::next_result).
    ///
    /// # Errors
    ///
    /// [`ServeError::Shed`] when admission control refused it (retry
    /// after the carried hint), [`ServeError::JobFailed`] when the server
    /// rejected the job spec itself.
    pub fn submit(&mut self, request: &JobRequest) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let rid = format!("{}-{:x}-{id}", self.tenant, self.nonce);
        let mut members = vec![
            ("type", Value::Str(RequestKind::Submit.as_str().into())),
            ("id", Value::Num(id as f64)),
            ("request_id", Value::Str(rid.clone())),
            ("app", Value::Str(request.app.clone())),
            ("platform", Value::Str(request.platform.clone())),
            ("flavor", Value::Str(request.flavor.clone())),
            ("scale", Value::Num(request.scale as f64)),
        ];
        if let Some(backend) = &request.backend {
            members.push(("backend", Value::Str(backend.clone())));
        }
        if request.echo_output {
            members.push(("echo_output", Value::Bool(true)));
        }
        let knobs: BTreeMap<String, Value> =
            request.knobs.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect();
        members.push(("knobs", Value::Obj(knobs)));
        let frame = to_obj(&members);
        // Recorded *before* the send: if the socket dies mid-write the
        // recovery path re-sends this exact frame and the server's dedup
        // ledger keeps the job single-execution.
        self.inflight.insert(id, frame.clone());
        if let Err(e) = self.send_value(&frame) {
            if let Err(e) = self.try_recover(e) {
                self.inflight.remove(&id);
                return Err(e);
            }
        }
        loop {
            let reply = match self.read_kind_resumable(
                &[ResponseKind::Accepted, ResponseKind::RetryAfter, ResponseKind::JobError],
                true,
            ) {
                Ok(reply) => reply,
                Err(e) => {
                    self.inflight.remove(&id);
                    return Err(e);
                }
            };
            match proto::frame_type(&reply).map_err(ServeError::Protocol)? {
                "ACCEPTED" => {
                    // A stale ack (another id, replayed by a resume) is
                    // not ours; keep waiting.
                    match reply.get("id").and_then(Value::as_u64) {
                        Some(got) if got != id => continue,
                        _ => return Ok(id),
                    }
                }
                "RETRY_AFTER" => {
                    // The shed submit was never admitted; a retry will
                    // carry a fresh request_id.
                    self.inflight.remove(&id);
                    return Err(ServeError::Shed {
                        reason: reply
                            .get("reason")
                            .and_then(Value::as_str)
                            .unwrap_or("unknown")
                            .to_string(),
                        retry_after_ms: reply
                            .get("retry_after_ms")
                            .and_then(Value::as_u64)
                            .unwrap_or(50),
                    });
                }
                _ => {
                    // JOB_ERROR: only ours if it names our request_id
                    // (or carries none, from a submit refused pre-dedup).
                    match reply.get("request_id").and_then(Value::as_str) {
                        Some(got) if got != rid => {
                            self.pending.push_back(reply);
                            continue;
                        }
                        _ => {
                            self.inflight.remove(&id);
                            return Err(ServeError::JobFailed(
                                reply
                                    .get("error")
                                    .and_then(Value::as_str)
                                    .unwrap_or("unspecified")
                                    .to_string(),
                            ));
                        }
                    }
                }
            }
        }
    }

    /// Blocks for the next `RESULT` (any id), converting `JOB_ERROR`
    /// frames into [`ServeError::JobFailed`]. Survives connection churn
    /// while submits are in flight.
    pub fn next_result(&mut self) -> Result<JobResult, ServeError> {
        let reply =
            self.read_kind_resumable(&[ResponseKind::Result, ResponseKind::JobError], true)?;
        match proto::frame_type(&reply).map_err(ServeError::Protocol)? {
            "RESULT" => parse_result(&reply),
            _ => Err(ServeError::JobFailed(
                reply.get("error").and_then(Value::as_str).unwrap_or("unspecified").to_string(),
            )),
        }
    }

    /// Submits one job end to end: retries through `RETRY_AFTER`
    /// backpressure with decorrelated-jitter backoff (floored at the
    /// server's hint, capped at [`ClientOptions::backoff_cap_ms`], up to
    /// `max retries` = 1000) and blocks for the matching result.
    ///
    /// # Errors
    ///
    /// [`ServeError::JobFailed`] when the job ran and failed;
    /// [`ServeError::Shed`] only if the retry budget is exhausted.
    pub fn run_job(&mut self, request: &JobRequest) -> Result<JobResult, ServeError> {
        let mut sheds = 0u64;
        let mut prev_ms = self.opts.backoff_base_ms;
        let id = loop {
            match self.submit(request) {
                Ok(id) => break id,
                Err(ServeError::Shed { retry_after_ms, reason }) => {
                    sheds += 1;
                    if sheds > 1000 {
                        return Err(ServeError::Shed { reason, retry_after_ms });
                    }
                    let wait = shed_backoff(
                        retry_after_ms,
                        prev_ms,
                        self.opts.backoff_cap_ms,
                        self.next_rand(),
                    );
                    prev_ms = wait;
                    std::thread::sleep(Duration::from_millis(wait));
                }
                Err(other) => return Err(other),
            }
        };
        loop {
            let mut result = self.next_result()?;
            if result.id == id {
                result.sheds = sheds;
                return Ok(result);
            }
            // A result for an earlier overlapping submit: keep it for a
            // later next_result call.
            self.pending.push_back(result_to_frame(&result));
        }
    }

    /// Fetches the live telemetry snapshot (`METRICS` →
    /// `METRICS_REPORT`), returned as the parsed JSON frame.
    pub fn metrics(&mut self) -> Result<Value, ServeError> {
        self.send(&[("type", Value::Str(RequestKind::Metrics.as_str().into()))])?;
        self.read_kind(&[ResponseKind::MetricsReport])
    }

    /// Asks the server to shut down gracefully and reads until `BYE`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when the server refuses (bad token).
    pub fn shutdown(&mut self, token: Option<&str>) -> Result<(), ServeError> {
        let mut members = vec![("type", Value::Str(RequestKind::Shutdown.as_str().into()))];
        if let Some(token) = token {
            members.push(("token", Value::Str(token.into())));
        }
        self.send(&members)?;
        self.read_kind(&[ResponseKind::Bye]).map(|_| ())
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn send(&mut self, members: &[(&str, Value)]) -> Result<(), ServeError> {
        let frame = to_obj(members);
        self.send_value(&frame)
    }

    fn send_value(&mut self, frame: &Value) -> Result<(), ServeError> {
        proto::write_frame(&mut self.conn.writer, frame, self.max_frame)?;
        self.last_write = Instant::now();
        Ok(())
    }

    /// Sends a `PING` if the negotiated heartbeat interval has elapsed
    /// since the last outgoing frame. Write errors are swallowed here:
    /// the read path notices the dead socket and recovers.
    fn maybe_ping(&mut self) {
        if self.heartbeat_ms == 0
            || self.last_write.elapsed() < Duration::from_millis(self.heartbeat_ms)
        {
            return;
        }
        let nonce = self.next_rand() & 0xffff_ffff;
        let _ = self.send(&[
            ("type", Value::Str(RequestKind::Ping.as_str().into())),
            ("nonce", Value::Num(nonce as f64)),
        ]);
    }

    /// Re-dials, re-`HELLO`s, and re-sends every in-flight `SUBMIT`
    /// frame, with decorrelated-jitter backoff between attempts.
    /// Returns `Err(err)` (the original failure) when reconnecting is
    /// off, nothing is in flight (nothing to resume), or the attempt
    /// budget runs out.
    fn try_recover(&mut self, err: ServeError) -> Result<(), ServeError> {
        if !self.opts.reconnect || self.inflight.is_empty() {
            return Err(err);
        }
        let mut prev_ms = self.opts.backoff_base_ms;
        'attempts: for attempt in 0..self.opts.max_reconnect_attempts {
            if attempt > 0 {
                let wait = shed_backoff(
                    self.opts.backoff_base_ms,
                    prev_ms,
                    self.opts.backoff_cap_ms,
                    self.next_rand(),
                );
                prev_ms = wait;
                std::thread::sleep(Duration::from_millis(wait));
            }
            let (conn, heartbeat_ms) = match dial(
                &self.addr,
                &self.tenant,
                self.token.as_deref(),
                self.opts.heartbeat_ms,
                self.max_frame,
            ) {
                Ok(dialed) => dialed,
                Err(_) => continue 'attempts,
            };
            self.conn = conn;
            self.heartbeat_ms = heartbeat_ms;
            self.last_write = Instant::now();
            // Resume: replay the recorded SUBMITs in submit order. The
            // server rebinds in-flight request_ids and replays parked
            // terminal frames; duplicates die in the completed set.
            let frames: Vec<Value> = self.inflight.values().cloned().collect();
            for frame in &frames {
                if self.send_value(frame).is_err() {
                    continue 'attempts;
                }
            }
            self.reconnects += 1;
            return Ok(());
        }
        Err(err)
    }

    fn read_kind(&mut self, kinds: &[ResponseKind]) -> Result<Value, ServeError> {
        self.read_kind_resumable(kinds, false)
    }

    /// Reads frames until one of `kinds` arrives, parking other response
    /// kinds in the pending queue. `ERROR` frames surface as
    /// [`ServeError::Remote`] regardless of what was asked for. With
    /// `resume`, transport failures trigger [`Self::try_recover`]
    /// instead of surfacing.
    ///
    /// All ingestion-time bookkeeping lives here: terminal frames are
    /// deduplicated against the completed set and retired from the
    /// in-flight map, `PONG`s are absorbed, and stale acks replayed by a
    /// resume are dropped.
    fn read_kind_resumable(
        &mut self,
        kinds: &[ResponseKind],
        resume: bool,
    ) -> Result<Value, ServeError> {
        let accepts = |frame: &Value| {
            proto::frame_type(frame)
                .ok()
                .and_then(ResponseKind::from_wire)
                .is_some_and(|k| kinds.contains(&k))
        };
        if let Some(at) = self.pending.iter().position(accepts) {
            return Ok(self.pending.remove(at).expect("position just found"));
        }
        loop {
            let frame = match proto::read_frame(&mut self.conn.reader, self.max_frame) {
                Ok(Some(frame)) => frame,
                Ok(None) => {
                    let err = ServeError::Protocol("server closed the connection".into());
                    if resume {
                        self.try_recover(err)?;
                        continue;
                    }
                    return Err(err);
                }
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    self.maybe_ping();
                    continue;
                }
                Err(e) => {
                    let err = ServeError::Io(e);
                    if resume {
                        self.try_recover(err)?;
                        continue;
                    }
                    return Err(err);
                }
            };
            let kind = proto::frame_type(&frame).map_err(ServeError::Protocol)?.to_string();
            match ResponseKind::from_wire(&kind) {
                Some(ResponseKind::Pong) => continue,
                Some(ResponseKind::Result | ResponseKind::JobError) => {
                    if let Some(rid) = frame.get("request_id").and_then(Value::as_str) {
                        if self.completed.contains(rid) {
                            self.duplicate_terminals += 1;
                            continue;
                        }
                        let rid = rid.to_string();
                        let id = frame.get("id").and_then(Value::as_u64).or_else(|| {
                            self.inflight
                                .iter()
                                .find(|(_, f)| {
                                    f.get("request_id").and_then(Value::as_str)
                                        == Some(rid.as_str())
                                })
                                .map(|(id, _)| *id)
                        });
                        if let Some(id) = id {
                            self.inflight.remove(&id);
                        }
                        self.note_completed(rid);
                    }
                }
                _ => {}
            }
            if accepts(&frame) {
                return Ok(frame);
            }
            match ResponseKind::from_wire(&kind) {
                Some(ResponseKind::Error) => {
                    return Err(ServeError::Remote(
                        frame
                            .get("error")
                            .and_then(Value::as_str)
                            .unwrap_or("unspecified")
                            .to_string(),
                    ));
                }
                // An ack nobody is awaiting can only be the echo of a
                // resume re-send; it carries no new information.
                Some(ResponseKind::Accepted | ResponseKind::RetryAfter) => continue,
                Some(_) => self.pending.push_back(frame),
                None => {
                    return Err(ServeError::Protocol(format!("unknown response kind {kind:?}")))
                }
            }
        }
    }

    fn note_completed(&mut self, rid: String) {
        if self.completed.insert(rid.clone()) {
            self.completed_order.push_back(rid);
            while self.completed_order.len() > COMPLETED_CAP {
                if let Some(evict) = self.completed_order.pop_front() {
                    self.completed.remove(&evict);
                }
            }
        }
    }
}

/// One reconnect/shed wait via decorrelated jitter: uniformly random in
/// `[low, high)` where `low` is the floor (server hint or base) and
/// `high` grows with the previous wait (`prev * 3`) but never past
/// `cap`. `rand` supplies the randomness so the schedule is a pure
/// function, unit-testable without sleeping.
fn shed_backoff(floor_ms: u64, prev_ms: u64, cap_ms: u64, rand: u64) -> u64 {
    let low = floor_ms.max(1);
    let high = prev_ms.saturating_mul(3).clamp(low + 1, cap_ms.max(low + 1));
    low + rand % (high - low)
}

/// Dials `addr`, performs the `HELLO`/`WELCOME` handshake (proposing
/// `heartbeat_ms` when nonzero), and arms the read-poll timeout.
/// Returns the connection and the negotiated heartbeat interval.
fn dial(
    addr: &str,
    tenant: &str,
    token: Option<&str>,
    heartbeat_ms: u64,
    max_frame: usize,
) -> Result<(Conn, u64), ServeError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut hello = vec![
        ("type", Value::Str(RequestKind::Hello.as_str().into())),
        ("tenant", Value::Str(tenant.into())),
        ("version", Value::Num(PROTOCOL_VERSION as f64)),
    ];
    if let Some(token) = token {
        hello.push(("token", Value::Str(token.into())));
    }
    if heartbeat_ms > 0 {
        hello.push(("heartbeat_ms", Value::Num(heartbeat_ms as f64)));
    }
    proto::write_frame(&mut writer, &to_obj(&hello), max_frame)?;
    let welcome = loop {
        match proto::read_frame(&mut reader, max_frame) {
            Ok(Some(frame)) => break frame,
            Ok(None) => {
                return Err(ServeError::Protocol(
                    "server closed the connection during handshake".into(),
                ))
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue
            }
            Err(e) => return Err(ServeError::Io(e)),
        }
    };
    match proto::frame_type(&welcome).map_err(ServeError::Protocol)? {
        "WELCOME" => {}
        "ERROR" => {
            return Err(ServeError::Remote(
                welcome.get("error").and_then(Value::as_str).unwrap_or("unspecified").to_string(),
            ));
        }
        other => {
            return Err(ServeError::Protocol(format!("expected WELCOME, got {other:?}")));
        }
    }
    debug_assert_eq!(welcome.get("tenant").and_then(Value::as_str), Some(tenant));
    let negotiated = welcome.get("heartbeat_ms").and_then(Value::as_u64).unwrap_or(0);
    // The poll tick keeps the heartbeat and recovery paths responsive;
    // read_frame's mid-frame patience still rides out slow frames.
    reader.get_ref().set_read_timeout(Some(POLL_TICK)).ok();
    Ok((Conn { reader, writer }, negotiated))
}

fn to_obj(members: &[(&str, Value)]) -> Value {
    Value::Obj(members.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect())
}

fn parse_result(frame: &Value) -> Result<JobResult, ServeError> {
    let field_u64 = |name: &str| {
        frame
            .get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| ServeError::Protocol(format!("RESULT missing numeric {name:?}")))
    };
    let field_f64 = |name: &str| {
        frame
            .get(name)
            .and_then(Value::as_f64)
            .ok_or_else(|| ServeError::Protocol(format!("RESULT missing numeric {name:?}")))
    };
    Ok(JobResult {
        id: field_u64("id")?,
        request_id: frame.get("request_id").and_then(Value::as_str).map(str::to_string),
        keys: field_u64("keys")?,
        digest: frame
            .get("digest")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::Protocol("RESULT missing digest".into()))?
            .to_string(),
        output: frame.get("output").and_then(Value::as_str).map(str::to_string),
        queued_ms: field_f64("queued_ms")?,
        ran_ms: field_f64("ran_ms")?,
        sheds: 0,
        metrics: frame.get("metrics").cloned().unwrap_or(Value::Null),
    })
}

/// Re-frames a parsed result so it can sit in the pending queue next to
/// raw frames (used when results arrive out of submit order).
fn result_to_frame(result: &JobResult) -> Value {
    let mut obj = std::collections::BTreeMap::new();
    obj.insert("type".into(), Value::Str(ResponseKind::Result.as_str().into()));
    obj.insert("id".into(), Value::Num(result.id as f64));
    if let Some(rid) = &result.request_id {
        obj.insert("request_id".into(), Value::Str(rid.clone()));
    }
    obj.insert("keys".into(), Value::Num(result.keys as f64));
    obj.insert("digest".into(), Value::Str(result.digest.clone()));
    if let Some(output) = &result.output {
        obj.insert("output".into(), Value::Str(output.clone()));
    }
    obj.insert("queued_ms".into(), Value::Num(result.queued_ms));
    obj.insert("ran_ms".into(), Value::Num(result.ran_ms));
    obj.insert("metrics".into(), result.metrics.clone());
    Value::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walks `shed_backoff` through a deterministic random stream,
    /// returning the full wait schedule.
    fn schedule(floor_ms: u64, cap_ms: u64, mut rng: u64, steps: usize) -> Vec<u64> {
        let mut prev = 50;
        (0..steps)
            .map(|_| {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                prev = shed_backoff(floor_ms, prev, cap_ms, rng);
                prev
            })
            .collect()
    }

    #[test]
    fn shed_backoff_stays_between_hint_and_cap() {
        for seed in 1..=8u64 {
            for wait in schedule(25, BACKOFF_CAP_MS, seed, 64) {
                assert!((25..=BACKOFF_CAP_MS).contains(&wait), "wait {wait} out of bounds");
            }
        }
    }

    #[test]
    fn shed_backoff_is_decorrelated_jitter() {
        // Different random streams must diverge (no lockstep thundering
        // herd), and a maximal-jitter walk must actually grow.
        assert_ne!(schedule(50, BACKOFF_CAP_MS, 1, 16), schedule(50, BACKOFF_CAP_MS, 2, 16));
        let mut prev = 50;
        let mut grew = false;
        for _ in 0..16 {
            let next = shed_backoff(50, prev, BACKOFF_CAP_MS, u64::MAX - 1);
            grew |= next > prev;
            prev = next;
        }
        assert!(grew, "maximal jitter never grew past the base wait");
    }

    #[test]
    fn shed_backoff_never_drops_below_the_server_hint() {
        // Even when the cap is tighter than the hint, the hint wins:
        // retrying sooner than the server asked is never correct.
        assert_eq!(shed_backoff(500, 100, 200, 0), 500);
        // Degenerate zeroes stay sane (no div-by-zero, no zero sleep).
        assert_eq!(shed_backoff(0, 0, 0, 0), 1);
    }

    #[test]
    fn shed_backoff_caps_runaway_growth() {
        let mut prev = 50;
        for _ in 0..64 {
            prev = shed_backoff(50, prev, 400, u64::MAX - 7);
            assert!(prev <= 400, "wait {prev} exceeded the cap");
        }
    }

    #[test]
    fn client_options_default_to_resilient() {
        let opts = ClientOptions::default();
        assert!(opts.reconnect);
        assert!(opts.max_reconnect_attempts >= 4);
        assert!(opts.backoff_base_ms >= 1);
        assert_eq!(opts.backoff_cap_ms, BACKOFF_CAP_MS);
        assert_eq!(opts.heartbeat_ms, 0);
    }
}
