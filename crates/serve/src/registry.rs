//! The app registry: typed schedulers behind a type-erased pool surface.
//!
//! [`JobScheduler`] is generic over one job type, but the wire carries
//! heterogeneous jobs. Each served app therefore gets its own
//! `TypedPool` — a scheduler plus an input cache — behind the
//! object-safe `AppPool` trait, and the server keys pools by
//! `(app, backend, knob overrides)` so jobs sharing a knob set share a
//! worker pool (the PR 5 pooling win) while divergent knob sets get their
//! own sessions.
//!
//! Inputs are generated server-side from the same deterministic Table I
//! generators the CLI uses (`mr_apps::inputs`), keyed by
//! `(platform, flavor, scale)` and cached as `Arc`s, so a job submission
//! names its input instead of shipping it — the differential tests compare
//! a socket run against an in-process run of the *same* generated input.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use mr_apps::inputs::{hg_input, km_input, lr_input, wc_input, InputFlavor, InputSpec, Platform};
use mr_apps::{AppKind, Histogram, KmeansState, LinearRegression, WordCount};
use mr_core::{Emitter, MapReduceJob, RuntimeConfig};
use ramr::{Backend, JobScheduler, SchedError, ShedReason, TenantStats};
use ramr_telemetry::json::{self, Value};
use ramr_telemetry::report::MetricsReport;

/// Apps a server will run, in wire-name order: the four single-pass
/// Table I applications (PCA and MM need multi-pass/matrix-task
/// construction and are not servable). `poison` joins the list only when
/// chaos mode is on.
pub const SERVABLE_APPS: [&str; 4] = ["wc", "hg", "lr", "km"];

/// The wire name of the chaos app (a job whose map always panics),
/// registered only when [`ServeConfig::chaos`](crate::ServeConfig::chaos)
/// is set.
pub const POISON_APP: &str = "poison";

/// A parsed `SUBMIT` input spec: which Table I input to generate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WireSpec {
    /// Paper platform the Table I row is read for (`hwl` / `phi`).
    pub platform: Platform,
    /// Input flavor (`small` / `medium` / `large`).
    pub flavor: InputFlavor,
    /// Scale divisor over the Table I size (larger = smaller input).
    pub scale: u64,
}

/// What one completed job sends back over the wire.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Number of distinct keys in the reduced output.
    pub keys: u64,
    /// FNV-1a 64 digest (hex) of the canonical rendering.
    pub digest: String,
    /// The canonical rendering itself, when the submit asked to echo it.
    pub rendered: Option<String>,
    /// Milliseconds the job waited in the submission queue.
    pub queued_ms: f64,
    /// Milliseconds the epoch ran.
    pub ran_ms: f64,
    /// The full `--metrics-json` report, as a parsed JSON tree.
    pub metrics: Value,
}

/// Waits for one accepted job and produces its wire outcome. Runs on a
/// per-job waiter thread so the connection loop never blocks on an epoch.
pub(crate) type Waiter = Box<dyn FnOnce() -> Result<JobOutcome, SchedError> + Send>;

/// A point-in-time pool gauge for the `METRICS` endpoint.
#[derive(Debug, Clone)]
pub struct PoolStatus {
    /// Jobs queued behind the dispatcher right now.
    pub queue_depth: usize,
    /// The configured queue bound.
    pub queue_capacity: usize,
    /// Whether the scheduler is shedding due to a stalled epoch.
    pub saturated: bool,
}

/// One served app: a typed scheduler behind a type-erased surface.
pub(crate) trait AppPool: Send + Sync {
    /// Non-blocking admission: hand back a waiter for the accepted job,
    /// or the typed shed reason. `tag`, when present, is recorded in the
    /// scheduler's execution ledger at dispatch (the server passes the
    /// tenant-scoped `request_id`).
    fn try_submit(
        &self,
        tenant: &str,
        spec: &WireSpec,
        echo: bool,
        tag: Option<&str>,
    ) -> Result<Waiter, SchedError>;

    /// Live queue gauges.
    fn status(&self) -> PoolStatus;

    /// Per-tenant accounting, including the shed breakdown.
    fn tenant_stats(&self) -> Vec<TenantStats>;

    /// Counts a shed decided above the scheduler (the server's rate
    /// limiter) into this pool's per-tenant stats.
    fn record_shed(&self, tenant: &str, reason: ShedReason);

    /// The scheduler's execution ledger (tags of dispatched jobs, in
    /// claim order); the wire-resilience tests audit it for exactly-once.
    fn executed_tags(&self) -> Vec<String>;
}

/// Renders a reduced output canonically: one `{key:?}\t{value:?}` line per
/// pair, in the runtime's key-sorted order. Both sides of the differential
/// test render through this exact function, so "byte-identical" is
/// well-defined across the socket.
pub fn render_pairs<K: std::fmt::Debug, V: std::fmt::Debug>(pairs: &[(K, V)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (k, v) in pairs {
        let _ = writeln!(out, "{k:?}\t{v:?}");
    }
    out
}

/// FNV-1a 64 over `text`, rendered as 16 hex digits. Stable across
/// platforms and builds, so a client can compare digests from different
/// servers.
pub fn digest64(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Builds the same [`MetricsReport`] the CLI writes for `--metrics-json`,
/// from a completed scheduled job.
fn metrics_report<J: MapReduceJob>(
    app: &str,
    backend: Backend,
    config: &RuntimeConfig,
    done: &ramr::CompletedJob<J>,
) -> MetricsReport {
    let stats = &done.output.stats;
    let ns = |d: std::time::Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    MetricsReport {
        app: app.to_string(),
        runtime: backend.as_str().to_string(),
        workers: config.num_workers as u64,
        combiners: config.num_combiners as u64,
        batch_size: config.batch_size as u64,
        emit_buffer: config.effective_emit_buffer() as u64,
        queue_capacity: config.queue_capacity as u64,
        phase_ns: [ns(stats.partition), ns(stats.map_combine), ns(stats.reduce), ns(stats.merge)],
        emitted: stats.emitted,
        consumed: done.report.consumed,
        threads: done.report.threads.clone(),
        faults: done.report.faults.clone(),
    }
}

/// Renders a completed job into its wire outcome; shared by the server's
/// waiter threads and the differential tests' in-process baseline.
pub fn outcome_of<J: MapReduceJob>(
    app: &str,
    backend: Backend,
    config: &RuntimeConfig,
    done: &ramr::CompletedJob<J>,
    echo: bool,
) -> JobOutcome {
    let rendered = render_pairs(&done.output.pairs);
    let metrics = json::parse(&metrics_report(app, backend, config, done).to_json())
        .expect("MetricsReport::to_json emits valid JSON");
    JobOutcome {
        keys: done.output.pairs.len() as u64,
        digest: digest64(&rendered),
        rendered: echo.then_some(rendered),
        queued_ms: done.queued.as_secs_f64() * 1e3,
        ran_ms: done.ran.as_secs_f64() * 1e3,
        metrics,
    }
}

/// Builds `(job, input)` for one wire spec; the `TypedPool` caches the
/// result per spec (k-means seeds its job from the input, so job and
/// input are constructed — and cached — together).
type MakeJob<J> =
    Box<dyn Fn(&WireSpec) -> (Arc<J>, Arc<Vec<<J as MapReduceJob>::Input>>) + Send + Sync>;

/// A materialised `(job, input)` pair, cached per [`WireSpec`].
type CachedInput<J> = (Arc<J>, Arc<Vec<<J as MapReduceJob>::Input>>);

/// A scheduler for one concrete job type plus its input cache.
struct TypedPool<J: MapReduceJob + Send + 'static> {
    app: &'static str,
    backend: Backend,
    sched: JobScheduler<J>,
    make: MakeJob<J>,
    cache: Mutex<BTreeMap<WireSpec, CachedInput<J>>>,
}

// WireSpec needs Ord for the BTreeMap cache key.
impl PartialOrd for WireSpec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WireSpec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let key = |s: &WireSpec| (format!("{:?}", s.platform), format!("{:?}", s.flavor), s.scale);
        key(self).cmp(&key(other))
    }
}

impl<J: MapReduceJob + Send + 'static> TypedPool<J> {
    fn job_and_input(&self, spec: &WireSpec) -> (Arc<J>, Arc<Vec<J::Input>>) {
        let mut cache = self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let (job, input) = cache.entry(spec.clone()).or_insert_with(|| (self.make)(spec));
        (Arc::clone(job), Arc::clone(input))
    }
}

impl<J: MapReduceJob + Send + 'static> AppPool for TypedPool<J> {
    fn try_submit(
        &self,
        tenant: &str,
        spec: &WireSpec,
        echo: bool,
        tag: Option<&str>,
    ) -> Result<Waiter, SchedError> {
        let (job, input) = self.job_and_input(spec);
        let client = self.sched.client(tenant);
        let ticket = match tag {
            Some(tag) => client.try_submit_tagged(job, input, tag)?,
            None => client.try_submit(job, input)?,
        };
        let app = self.app;
        let backend = self.backend;
        let config = self.sched.config().clone();
        Ok(Box::new(move || {
            ticket.wait().map(|done| outcome_of(app, backend, &config, &done, echo))
        }))
    }

    fn status(&self) -> PoolStatus {
        PoolStatus {
            queue_depth: self.sched.queue_depth(),
            queue_capacity: self.sched.queue_capacity(),
            saturated: self.sched.is_saturated(),
        }
    }

    fn tenant_stats(&self) -> Vec<TenantStats> {
        self.sched.tenant_stats()
    }

    fn record_shed(&self, tenant: &str, reason: ShedReason) {
        self.sched.client(tenant).record_shed(reason);
    }

    fn executed_tags(&self) -> Vec<String> {
        self.sched.execution_ledger()
    }
}

/// A job whose map always panics — the chaos app (`poison`), registered
/// only when the server runs with chaos mode on. Used by the fault-
/// isolation tests: a tenant submitting it gets a `JOB_ERROR` while every
/// other connection keeps being served.
#[derive(Debug)]
pub struct PoisonJob;

impl MapReduceJob for PoisonJob {
    type Input = u64;
    type Key = u64;
    type Value = u64;

    fn map(&self, _task: &[u64], _emit: &mut Emitter<'_, u64, u64>) {
        panic!("poison job: deliberate map-side panic");
    }

    fn combine(&self, acc: &mut u64, v: u64) {
        *acc += v;
    }

    fn key_space(&self) -> Option<usize> {
        Some(8)
    }

    fn key_index(&self, k: &u64) -> usize {
        *k as usize
    }
}

/// Constructs the pool for one wire app name on `backend` with `config`.
///
/// # Errors
///
/// Names the unknown/unservable app (PCA and MM are refused: they need
/// multi-pass or matrix-task construction the wire spec cannot express).
pub(crate) fn make_pool(
    app: &str,
    backend: Backend,
    config: RuntimeConfig,
    chaos: bool,
) -> Result<Arc<dyn AppPool>, String> {
    fn pool<J: MapReduceJob + Send + 'static>(
        app: &'static str,
        backend: Backend,
        config: RuntimeConfig,
        make: MakeJob<J>,
    ) -> Result<Arc<dyn AppPool>, String> {
        let sched = JobScheduler::<J>::new(backend, config)
            .map_err(|e| format!("cannot open a {app} pool: {e}"))?;
        Ok(Arc::new(TypedPool { app, backend, sched, make, cache: Mutex::new(BTreeMap::new()) }))
    }

    let table1 = |app: AppKind, spec: &WireSpec| InputSpec::table1(app, spec.platform, spec.flavor);
    match app {
        "wc" => pool::<WordCount>(
            "wc",
            backend,
            config,
            Box::new(move |spec| {
                let input = wc_input(&table1(AppKind::WordCount, spec), spec.scale);
                (Arc::new(WordCount), Arc::new(input))
            }),
        ),
        "hg" => pool::<Histogram>(
            "hg",
            backend,
            config,
            Box::new(move |spec| {
                let input = hg_input(&table1(AppKind::Histogram, spec), spec.scale);
                (Arc::new(Histogram), Arc::new(input))
            }),
        ),
        "lr" => pool::<LinearRegression>(
            "lr",
            backend,
            config,
            Box::new(move |spec| {
                let input = lr_input(&table1(AppKind::LinearRegression, spec), spec.scale);
                (Arc::new(LinearRegression), Arc::new(input))
            }),
        ),
        "km" => pool(
            "km",
            backend,
            config,
            Box::new(move |spec| {
                let input = km_input(&table1(AppKind::Kmeans, spec), spec.scale);
                let job = KmeansState::seeded(&input, 16).job();
                (Arc::new(job), Arc::new(input))
            }),
        ),
        POISON_APP if chaos => pool::<PoisonJob>(
            POISON_APP,
            backend,
            config,
            Box::new(|_spec| (Arc::new(PoisonJob), Arc::new((0..64).collect()))),
        ),
        POISON_APP => {
            Err(format!("app {POISON_APP:?} is only served in chaos mode (RAMR_SERVE_CHAOS=1)"))
        }
        other => Err(format!(
            "unknown or unservable app {other:?} (servable: {})",
            SERVABLE_APPS.join(", ")
        )),
    }
}

/// The milliseconds a shed client should wait before retrying, scaled by
/// reason severity: saturation backs off four times as hard as a full
/// queue, a drained rate bucket or an exhausted quota twice (see
/// [`ShedReason`]).
pub fn retry_hint_ms(reason: ShedReason, base_ms: u64) -> u64 {
    match reason {
        ShedReason::QueueFull => base_ms,
        ShedReason::RateLimited | ShedReason::Quota => base_ms * 2,
        ShedReason::Saturated => base_ms * 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        assert_eq!(digest64(""), "cbf29ce484222325");
        assert_eq!(digest64("a\t1\n"), digest64("a\t1\n"));
        assert_ne!(digest64("a\t1\nb\t2\n"), digest64("b\t2\na\t1\n"));
    }

    #[test]
    fn rendering_is_line_per_pair() {
        let pairs = vec![("a".to_string(), 1u64), ("b".to_string(), 2)];
        assert_eq!(render_pairs(&pairs), "\"a\"\t1\n\"b\"\t2\n");
    }

    #[test]
    fn retry_hints_scale_with_severity() {
        assert_eq!(retry_hint_ms(ShedReason::QueueFull, 50), 50);
        assert_eq!(retry_hint_ms(ShedReason::RateLimited, 50), 100);
        assert_eq!(retry_hint_ms(ShedReason::Quota, 50), 100);
        assert_eq!(retry_hint_ms(ShedReason::Saturated, 50), 200);
    }
}
