//! `ramr-serve`: a long-running job server over the concurrent scheduler.
//!
//! The rest of the workspace submits jobs in-process; this crate is the
//! front door the ROADMAP's "service mode" item calls for. A [`Server`]
//! binds a std `TcpListener` (no new dependencies — the vendored offline
//! registry stays untouched) and speaks a small length-prefixed JSON
//! protocol ([`proto`]): clients connect, authenticate as a named tenant
//! (`HELLO`), submit jobs by app name + Table I input spec + per-job
//! [`mr_core::ENV_KNOBS`] overrides (`SUBMIT`), and stream back results
//! carrying the same hand-rolled `--metrics-json` report the CLI writes.
//!
//! Resource-awareness reaches the wire: the scheduler's typed admission
//! control ([`ramr::ShedReason`]) maps onto explicit `RETRY_AFTER`
//! responses when the queue is full, a tenant is over quota, or the
//! watchdog reports saturation — so backpressure is a protocol feature,
//! not a hung socket. A `METRICS` request returns live queue gauges and
//! per-tenant accounting on the same connection, and shutdown is graceful:
//! in-flight epochs drain, queued tickets resolve to `JOB_ERROR`s, every
//! connection gets a `BYE`.
//!
//! See `SERVICE.md` at the repository root for the operator-facing
//! protocol reference, knob table, and quickstart.
//!
//! ```no_run
//! use ramr_serve::{JobRequest, ServeClient, ServeConfig, Server};
//!
//! let mut config = ServeConfig::default();
//! config.addr = "127.0.0.1:0".into(); // ephemeral port
//! let server = Server::bind(config)?;
//! let addr = server.local_addr().to_string();
//!
//! let mut client = ServeClient::connect(&addr, "alice", None)?;
//! let result = client.run_job(&JobRequest::new("wc"))?;
//! println!("{} keys, digest {}", result.keys, result.digest);
//! server.shutdown();
//! server.wait();
//! # Ok::<(), ramr_serve::ServeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod proto;
pub mod registry;
pub mod server;

pub use client::{ClientOptions, JobRequest, JobResult, ServeClient, ServeError};
pub use proto::{RequestKind, ResponseKind, PROTOCOL_VERSION};
pub use registry::{
    digest64, outcome_of, render_pairs, retry_hint_ms, JobOutcome, PoisonJob, PoolStatus, WireSpec,
    POISON_APP, SERVABLE_APPS,
};
pub use server::Server;

use mr_core::RuntimeConfig;
use ramr::Backend;

/// Server configuration: the listen/auth/limit surface plus the base
/// [`RuntimeConfig`] every pool starts from (per-job knob overrides are
/// applied on top, and each distinct override set gets its own pool).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`RAMR_SERVE_ADDR`); `HOST:0` picks an ephemeral
    /// port, reported by [`Server::local_addr`].
    pub addr: String,
    /// Shared authentication token (`RAMR_SERVE_TOKEN`). When set, every
    /// `HELLO` and `SHUTDOWN` must carry it; unset means an open server.
    pub token: Option<String>,
    /// Bound on distinct `(app, backend, knob-set)` pools the server will
    /// open (`RAMR_SERVE_MAX_POOLS`); each pool owns a worker-thread
    /// session, so this caps the server's thread footprint.
    pub max_pools: usize,
    /// Base `RETRY_AFTER` hint in milliseconds (`RAMR_SERVE_RETRY_MS`);
    /// scaled up by shed severity (see [`retry_hint_ms`]).
    pub retry_ms: u64,
    /// Serve the `poison` chaos app (`RAMR_SERVE_CHAOS`); off in
    /// production, on in the fault-isolation tests.
    pub chaos: bool,
    /// Frame size bound in bytes (`RAMR_SERVE_MAX_FRAME`), enforced on
    /// read and write.
    pub max_frame: usize,
    /// Per-tenant token-bucket rate limit in submits per second
    /// (`RAMR_SERVE_RATE`); `0.0` disables rate limiting. The bucket
    /// holds one second of burst (at least one token), refills
    /// continuously, and refusals shed with `rate-limited` `RETRY_AFTER`
    /// responses.
    pub rate: f64,
    /// Ceiling on the heartbeat interval a client may negotiate in
    /// `HELLO`, in milliseconds (`RAMR_SERVE_HEARTBEAT_MS`); `0` refuses
    /// heartbeat negotiation entirely. A connection that negotiated a
    /// heartbeat and then stays silent for three intervals is dropped
    /// (its terminal frames park for reconnect pickup).
    pub heartbeat_ms: u64,
    /// How long a terminal frame (RESULT / JOB_ERROR) whose tenant has
    /// disconnected is parked server-side before it expires, in
    /// milliseconds (`RAMR_SERVE_PARK_TTL_MS`). Parked frames are
    /// re-delivered when the tenant re-sends the same `request_id`.
    pub park_ttl_ms: u64,
    /// Backend jobs run on when a `SUBMIT` names none.
    pub default_backend: Backend,
    /// The base runtime configuration pools are built from.
    pub base: RuntimeConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ServeConfig {
            addr: "127.0.0.1:7199".into(),
            token: None,
            max_pools: 4,
            retry_ms: 50,
            chaos: false,
            max_frame: 4 << 20,
            rate: 0.0,
            heartbeat_ms: 30_000,
            park_ttl_ms: 60_000,
            default_backend: Backend::RamrStatic,
            base: RuntimeConfig::builder()
                .num_workers(threads.max(2))
                .num_combiners((threads / 2).max(1))
                .task_size(1024)
                .queue_capacity(5000)
                .batch_size(1000)
                .build()
                .expect("default serve config is valid"),
        }
    }
}

impl ServeConfig {
    /// Reads the `RAMR_SERVE_*` environment, overlaying the defaults —
    /// the service-layer twin of [`RuntimeConfig::from_env`].
    ///
    /// # Errors
    ///
    /// Names the first variable whose value does not parse.
    pub fn from_env() -> Result<Self, String> {
        let mut config = ServeConfig::default();
        for knob in SERVE_KNOBS {
            if let Ok(raw) = std::env::var(knob.env) {
                config = (knob.apply)(config, &raw, knob.env)?;
            }
        }
        Ok(config)
    }
}

/// One service-layer knob: its environment variable, CLI flag, and shared
/// parse/apply behaviour — the same single-table pattern as
/// [`mr_core::ENV_KNOBS`], consumed by [`ServeConfig::from_env`], the
/// CLI's `serve` flags, and the docs-drift tests over `SERVICE.md`.
#[derive(Clone, Copy)]
pub struct ServeKnob {
    /// The environment variable name (`RAMR_SERVE_*`).
    pub env: &'static str,
    /// The CLI flag name, without the leading `--`.
    pub cli: &'static str,
    /// Placeholder for the knob's value in help text.
    pub value: &'static str,
    /// One-line description for help text and docs.
    pub help: &'static str,
    /// Parses `raw` and applies it; `source` names the env var or flag
    /// for error messages.
    pub apply: fn(ServeConfig, &str, &str) -> Result<ServeConfig, String>,
}

impl std::fmt::Debug for ServeKnob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeKnob")
            .field("env", &self.env)
            .field("cli", &self.cli)
            .field("value", &self.value)
            .finish_non_exhaustive()
    }
}

fn parse_knob<T: std::str::FromStr>(raw: &str, source: &str) -> Result<T, String> {
    raw.parse::<T>().map_err(|_| format!("cannot parse {source}={raw}"))
}

fn parse_knob_bool(raw: &str, source: &str) -> Result<bool, String> {
    match raw.to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Ok(true),
        "0" | "false" | "no" | "off" => Ok(false),
        _ => Err(format!("cannot parse {source}={raw} (expected 0|1|true|false|yes|no)")),
    }
}

/// The service layer's knob table — every `RAMR_SERVE_*` variable, its
/// CLI flag, and its apply function, in one place (see [`ServeKnob`]).
pub const SERVE_KNOBS: &[ServeKnob] = &[
    ServeKnob {
        env: "RAMR_SERVE_ADDR",
        cli: "serve-addr",
        value: "HOST:PORT",
        help: "listen address; port 0 picks an ephemeral port",
        apply: |mut c, raw, _| {
            c.addr = raw.to_string();
            Ok(c)
        },
    },
    ServeKnob {
        env: "RAMR_SERVE_TOKEN",
        cli: "serve-token",
        value: "TOKEN",
        help: "shared auth token for HELLO and SHUTDOWN; unset = open server",
        apply: |mut c, raw, _| {
            c.token = (!raw.is_empty()).then(|| raw.to_string());
            Ok(c)
        },
    },
    ServeKnob {
        env: "RAMR_SERVE_MAX_POOLS",
        cli: "serve-max-pools",
        value: "N",
        help: "bound on distinct (app, backend, knob-set) worker pools",
        apply: |mut c, raw, src| {
            c.max_pools = parse_knob(raw, src)?;
            if c.max_pools == 0 {
                return Err(format!("{src} must be at least 1"));
            }
            Ok(c)
        },
    },
    ServeKnob {
        env: "RAMR_SERVE_RETRY_MS",
        cli: "serve-retry-ms",
        value: "MS",
        help: "base RETRY_AFTER hint; scaled 1x/2x/4x by shed severity",
        apply: |mut c, raw, src| {
            c.retry_ms = parse_knob(raw, src)?;
            Ok(c)
        },
    },
    ServeKnob {
        env: "RAMR_SERVE_CHAOS",
        cli: "serve-chaos",
        value: "0|1",
        help: "serve the poison chaos app (fault-isolation tests only)",
        apply: |mut c, raw, src| {
            c.chaos = parse_knob_bool(raw, src)?;
            Ok(c)
        },
    },
    ServeKnob {
        env: "RAMR_SERVE_RATE",
        cli: "serve-rate",
        value: "PER_SEC",
        help: "per-tenant token-bucket rate limit in submits/sec; 0 = off",
        apply: |mut c, raw, src| {
            c.rate = parse_knob(raw, src)?;
            if !c.rate.is_finite() || c.rate < 0.0 {
                return Err(format!("{src} must be a finite rate >= 0"));
            }
            Ok(c)
        },
    },
    ServeKnob {
        env: "RAMR_SERVE_HEARTBEAT_MS",
        cli: "serve-heartbeat-ms",
        value: "MS",
        help: "ceiling on the HELLO-negotiated heartbeat interval; 0 = refuse",
        apply: |mut c, raw, src| {
            c.heartbeat_ms = parse_knob(raw, src)?;
            Ok(c)
        },
    },
    ServeKnob {
        env: "RAMR_SERVE_PARK_TTL_MS",
        cli: "serve-park-ttl-ms",
        value: "MS",
        help: "how long terminal frames for a gone tenant stay claimable",
        apply: |mut c, raw, src| {
            c.park_ttl_ms = parse_knob(raw, src)?;
            if c.park_ttl_ms == 0 {
                return Err(format!("{src} must be at least 1 ms"));
            }
            Ok(c)
        },
    },
    ServeKnob {
        env: "RAMR_SERVE_MAX_FRAME",
        cli: "serve-max-frame",
        value: "BYTES",
        help: "wire frame size bound, enforced on read and write",
        apply: |mut c, raw, src| {
            c.max_frame = parse_knob(raw, src)?;
            if c.max_frame < 1024 {
                return Err(format!("{src} must be at least 1024 bytes"));
            }
            Ok(c)
        },
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_knob_table_applies_and_validates() {
        let base = ServeConfig::default();
        let knob = |env: &str| SERVE_KNOBS.iter().find(|k| k.env == env).unwrap();
        let c = (knob("RAMR_SERVE_ADDR").apply)(base.clone(), "0.0.0.0:9", "t").unwrap();
        assert_eq!(c.addr, "0.0.0.0:9");
        let c = (knob("RAMR_SERVE_TOKEN").apply)(base.clone(), "s3cret", "t").unwrap();
        assert_eq!(c.token.as_deref(), Some("s3cret"));
        let c = (knob("RAMR_SERVE_CHAOS").apply)(base.clone(), "1", "t").unwrap();
        assert!(c.chaos);
        let c = (knob("RAMR_SERVE_RATE").apply)(base.clone(), "2.5", "t").unwrap();
        assert!((c.rate - 2.5).abs() < f64::EPSILON);
        let c = (knob("RAMR_SERVE_HEARTBEAT_MS").apply)(base.clone(), "250", "t").unwrap();
        assert_eq!(c.heartbeat_ms, 250);
        let c = (knob("RAMR_SERVE_PARK_TTL_MS").apply)(base.clone(), "500", "t").unwrap();
        assert_eq!(c.park_ttl_ms, 500);
        assert!((knob("RAMR_SERVE_MAX_POOLS").apply)(base.clone(), "0", "t").is_err());
        assert!((knob("RAMR_SERVE_MAX_FRAME").apply)(base.clone(), "12", "t").is_err());
        assert!((knob("RAMR_SERVE_RATE").apply)(base.clone(), "-1", "t").is_err());
        assert!((knob("RAMR_SERVE_RATE").apply)(base.clone(), "inf", "t").is_err());
        assert!((knob("RAMR_SERVE_PARK_TTL_MS").apply)(base.clone(), "0", "t").is_err());
        assert!((knob("RAMR_SERVE_RETRY_MS").apply)(base, "soon", "t").is_err());
    }

    #[test]
    fn knob_names_are_unique_and_env_cli_paired() {
        let mut envs: Vec<_> = SERVE_KNOBS.iter().map(|k| k.env).collect();
        let mut clis: Vec<_> = SERVE_KNOBS.iter().map(|k| k.cli).collect();
        envs.sort_unstable();
        envs.dedup();
        clis.sort_unstable();
        clis.dedup();
        assert_eq!(envs.len(), SERVE_KNOBS.len());
        assert_eq!(clis.len(), SERVE_KNOBS.len());
        for knob in SERVE_KNOBS {
            assert!(knob.env.starts_with("RAMR_SERVE_"), "{}", knob.env);
            assert!(knob.cli.starts_with("serve-"), "{}", knob.cli);
        }
    }
}
