//! The wire protocol: length-prefixed JSON frames and their message kinds.
//!
//! A frame is one complete JSON object preceded by its byte length in
//! ASCII decimal and a single space, and followed by a newline:
//!
//! ```text
//! 45 {"tenant":"alice","type":"HELLO","version":1}\n
//! ```
//!
//! The length covers the JSON text only (not the prefix or the trailing
//! newline). The prefix lets a reader allocate exactly once and reject
//! oversized frames *before* buffering them; the newline keeps captures
//! human-readable (`nc` output is one frame per line). Every payload is an
//! object carrying a `"type"` member naming its kind; the kinds are closed
//! enums ([`RequestKind`], [`ResponseKind`]) so the docs-drift suite can
//! pin `SERVICE.md` against the exact wire vocabulary.
//!
//! JSON is produced and parsed by [`ramr_telemetry::json`] — the same
//! hand-rolled layer behind `--metrics-json` — so the server streams
//! reports in the format operators already ingest.

use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

use ramr_telemetry::json::{self, Value};

/// The protocol version sent in `HELLO` / echoed in `WELCOME`.
pub const PROTOCOL_VERSION: u64 = 1;

/// How long a reader keeps retrying timed-out reads *mid-frame* before
/// declaring the peer dead. A fresh frame boundary propagates the timeout
/// immediately (that is the server's shutdown-poll point); inside a frame
/// the reader holds on, because abandoning a half-read frame desyncs the
/// stream.
pub const MID_FRAME_PATIENCE: Duration = Duration::from_secs(10);

/// Client-to-server message kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// First frame on every connection: authenticate as a named tenant.
    Hello,
    /// Submit one job (app + input spec + per-job knob overrides).
    Submit,
    /// Ask for a live telemetry snapshot (queue depths, tenant stats).
    Metrics,
    /// Heartbeat probe; the server answers with `PONG`. Sent by clients
    /// that negotiated a heartbeat interval in `HELLO`, to keep the idle
    /// deadline at bay and detect a silently dead server.
    Ping,
    /// Ask the server to shut down gracefully.
    Shutdown,
}

impl RequestKind {
    /// Every request kind, in handshake-then-steady-state order.
    pub const ALL: [RequestKind; 5] = [
        RequestKind::Hello,
        RequestKind::Submit,
        RequestKind::Metrics,
        RequestKind::Ping,
        RequestKind::Shutdown,
    ];

    /// The wire name carried in the frame's `"type"` member.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Hello => "HELLO",
            RequestKind::Submit => "SUBMIT",
            RequestKind::Metrics => "METRICS",
            RequestKind::Ping => "PING",
            RequestKind::Shutdown => "SHUTDOWN",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn from_wire(name: &str) -> Option<RequestKind> {
        RequestKind::ALL.into_iter().find(|k| k.as_str() == name)
    }
}

/// Server-to-client message kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseKind {
    /// Handshake accepted; carries the negotiated protocol version.
    Welcome,
    /// A `SUBMIT` passed admission control; its result streams later.
    Accepted,
    /// A `SUBMIT` was shed — carries the typed reason and a retry hint.
    RetryAfter,
    /// A completed job: digest, timings, and the full metrics report.
    Result,
    /// A job that ran and failed (or died to a shutdown).
    JobError,
    /// The live telemetry snapshot answering a `METRICS` request.
    MetricsReport,
    /// The heartbeat answer to a `PING`.
    Pong,
    /// A request the server refused (bad auth, unknown app, malformed
    /// frame); the connection closes after protocol-level errors.
    Error,
    /// The server's goodbye: sent before it closes the connection.
    Bye,
}

impl ResponseKind {
    /// Every response kind.
    pub const ALL: [ResponseKind; 9] = [
        ResponseKind::Welcome,
        ResponseKind::Accepted,
        ResponseKind::RetryAfter,
        ResponseKind::Result,
        ResponseKind::JobError,
        ResponseKind::MetricsReport,
        ResponseKind::Pong,
        ResponseKind::Error,
        ResponseKind::Bye,
    ];

    /// The wire name carried in the frame's `"type"` member.
    pub fn as_str(self) -> &'static str {
        match self {
            ResponseKind::Welcome => "WELCOME",
            ResponseKind::Accepted => "ACCEPTED",
            ResponseKind::RetryAfter => "RETRY_AFTER",
            ResponseKind::Result => "RESULT",
            ResponseKind::JobError => "JOB_ERROR",
            ResponseKind::MetricsReport => "METRICS_REPORT",
            ResponseKind::Pong => "PONG",
            ResponseKind::Error => "ERROR",
            ResponseKind::Bye => "BYE",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn from_wire(name: &str) -> Option<ResponseKind> {
        ResponseKind::ALL.into_iter().find(|k| k.as_str() == name)
    }
}

/// Serializes `frame` and writes it as one length-prefixed frame.
///
/// # Errors
///
/// `InvalidData` when the serialized frame exceeds `max_frame` bytes;
/// otherwise the underlying write error.
pub fn write_frame<W: Write>(w: &mut W, frame: &Value, max_frame: usize) -> io::Result<()> {
    let text = frame.to_json();
    if text.len() > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the {max_frame}-byte bound", text.len()),
        ));
    }
    let mut bytes = Vec::with_capacity(text.len() + 16);
    bytes.extend_from_slice(format!("{} ", text.len()).as_bytes());
    bytes.extend_from_slice(text.as_bytes());
    bytes.push(b'\n');
    w.write_all(&bytes)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on clean end-of-stream (the peer
/// closed between frames).
///
/// A read timeout *between* frames propagates as the underlying
/// `WouldBlock`/`TimedOut` error so callers can poll a shutdown flag;
/// a timeout *inside* a frame is retried for `MID_FRAME_PATIENCE`
/// before giving up, so slow writers do not desync the stream.
///
/// # Errors
///
/// `InvalidData` on a malformed prefix, an oversized frame, or JSON that
/// does not parse; `UnexpectedEof` when the peer dies mid-frame.
pub fn read_frame<R: BufRead>(r: &mut R, max_frame: usize) -> io::Result<Option<Value>> {
    read_frame_with_patience(r, max_frame, MID_FRAME_PATIENCE)
}

/// [`read_frame`] with an explicit mid-frame patience budget instead of
/// the default [`MID_FRAME_PATIENCE`]. The fuzz suite uses a tiny budget
/// to prove the stall deadline actually fires without waiting out the
/// production ten seconds.
///
/// # Errors
///
/// Exactly as [`read_frame`], plus `TimedOut` when the peer stalls
/// mid-frame past `patience`.
pub fn read_frame_with_patience<R: BufRead>(
    r: &mut R,
    max_frame: usize,
    patience: Duration,
) -> io::Result<Option<Value>> {
    // Length prefix: ASCII digits up to the first space.
    let mut len: usize = 0;
    let mut digits = 0usize;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) if digits == 0 => return Ok(None),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(_) => {}
            // Idle between frames: let the caller poll. Mid-prefix the
            // frame has started, so fall through to patient retries.
            Err(e)
                if digits == 0
                    && matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                return Err(e);
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        match byte[0] {
            b'0'..=b'9' => {
                digits += 1;
                len = len.saturating_mul(10).saturating_add(usize::from(byte[0] - b'0'));
                if len > max_frame {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("frame length {len} exceeds the {max_frame}-byte bound"),
                    ));
                }
            }
            b' ' if digits > 0 => break,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad frame prefix byte {other:#04x} (want ASCII digits then space)"),
                ));
            }
        }
    }

    // Payload + trailing newline, retrying timeouts patiently.
    let mut payload = vec![0u8; len + 1];
    let mut filled = 0;
    let deadline = Instant::now() + patience;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "peer stalled mid-frame"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if payload.pop() != Some(b'\n') {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame missing trailing newline"));
    }
    let text = std::str::from_utf8(&payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    json::parse(text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame JSON: {e}")))
}

/// The `"type"` member of a frame, or an error naming what was found.
pub fn frame_type(frame: &Value) -> Result<&str, String> {
    frame
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| "frame has no string \"type\" member".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Obj(pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect())
    }

    #[test]
    fn frames_round_trip() {
        let frame = obj(&[
            ("type", Value::Str("HELLO".into())),
            ("tenant", Value::Str("alice".into())),
            ("version", Value::Num(1.0)),
        ]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame, 1024).unwrap();
        let mut reader = BufReader::new(&wire[..]);
        assert_eq!(read_frame(&mut reader, 1024).unwrap(), Some(frame));
        assert_eq!(read_frame(&mut reader, 1024).unwrap(), None);
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let mut wire = Vec::new();
        for i in 0..5u32 {
            write_frame(&mut wire, &obj(&[("id", Value::Num(f64::from(i)))]), 1024).unwrap();
        }
        let mut reader = BufReader::new(&wire[..]);
        for i in 0..5u32 {
            let frame = read_frame(&mut reader, 1024).unwrap().unwrap();
            assert_eq!(frame.get("id").and_then(Value::as_u64), Some(u64::from(i)));
        }
        assert_eq!(read_frame(&mut reader, 1024).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_sides() {
        let big = obj(&[("blob", Value::Str("x".repeat(100)))]);
        let mut wire = Vec::new();
        assert!(write_frame(&mut wire, &big, 32).is_err());
        write_frame(&mut wire, &big, 4096).unwrap();
        let err = read_frame(&mut BufReader::new(&wire[..]), 32).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn malformed_prefixes_are_rejected() {
        for bad in [&b"x5 {}\n"[..], b"5x {}\n", b" 5 {}\n"] {
            let err = read_frame(&mut BufReader::new(bad), 1024).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad:?}");
        }
        // Length longer than the payload: the stream ends mid-frame.
        let err = read_frame(&mut BufReader::new(&b"3 {}\n"[..]), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Length shorter than the payload: the newline check fires.
        let err = read_frame(&mut BufReader::new(&b"1 {}\n"[..]), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wire_names_round_trip_through_from_wire() {
        for kind in RequestKind::ALL {
            assert_eq!(RequestKind::from_wire(kind.as_str()), Some(kind));
        }
        for kind in ResponseKind::ALL {
            assert_eq!(ResponseKind::from_wire(kind.as_str()), Some(kind));
        }
        assert_eq!(RequestKind::from_wire("NOPE"), None);
        assert_eq!(ResponseKind::from_wire("NOPE"), None);
    }
}
