//! Calibration dump: prints every figure-relevant quantity so model
//! constants can be tuned against the paper's published numbers.

use mr_apps::AppKind;
use mrsim::{simulate, SimConfig, SimJob};
use ramr_perfmodel::catalog;
use ramr_topology::{MachineModel, PinningPolicy};

fn job(app: AppKind, stressed: bool) -> SimJob {
    let profile =
        if stressed { catalog::stressed_profile(app) } else { catalog::default_profile(app) };
    let (elements, keys) = match app {
        AppKind::WordCount => (2_000_000, 5_000),
        AppKind::Histogram => (60_000_000, 768),
        AppKind::LinearRegression => (50_000_000, 5),
        AppKind::Kmeans => (2_000_000, 64),
        AppKind::Pca => (500_000, 500_000),
        AppKind::MatrixMultiply => (32_000, 65_536),
    };
    SimJob { profile, input_elements: elements, unique_keys: keys }
}

fn main() {
    for (mname, machine) in
        [("HWL", MachineModel::haswell_server()), ("PHI", MachineModel::xeon_phi())]
    {
        println!("=== {mname} ===");
        for stressed in [false, true] {
            println!(" containers: {}", if stressed { "hash/stressed" } else { "default" });
            for app in AppKind::ALL {
                let j = job(app, stressed);
                let p = simulate(&j, &SimConfig::phoenix(machine.clone()));
                let r = simulate(&j, &SimConfig::ramr(machine.clone()));
                println!(
                    "  {:3} speedup {:5.2}  (M/C {}/{}  mc_frac_p {:.2} q_ovh {:.2} bw {:.2} map_util {:.2})",
                    app.abbrev(),
                    p.total_ns() / r.total_ns(),
                    r.mappers, r.combiners,
                    p.map_combine_fraction(),
                    r.queue_overhead_fraction,
                    r.bandwidth_utilization,
                    r.mapper_utilization,
                );
            }
        }
        // pinning gains (default containers)
        println!(" pinning gains vs RR / OS:");
        for app in AppKind::ALL {
            let j = job(app, false);
            let mut cfg = SimConfig::ramr(machine.clone());
            cfg.pinning = PinningPolicy::Ramr;
            let ramr = simulate(&j, &cfg).total_ns();
            cfg.pinning = PinningPolicy::RoundRobin;
            let rr = simulate(&j, &cfg).total_ns();
            cfg.pinning = PinningPolicy::OsDefault;
            let os = simulate(&j, &cfg).total_ns();
            println!("  {:3} rr {:5.2} os {:5.2}", app.abbrev(), rr / ramr, os / ramr);
        }
        // batching gains
        println!(" batching gains (batch 1 -> 1000):");
        for app in AppKind::ALL {
            let j = job(app, false);
            let mut cfg = SimConfig::ramr(machine.clone());
            cfg.batch_size = 1;
            let un = simulate(&j, &cfg).total_ns();
            cfg.batch_size = 1000;
            let b = simulate(&j, &cfg).total_ns();
            println!("  {:3} gain {:5.2}", app.abbrev(), un / b);
        }
        // batch sweep KM
        print!(" KM batch sweep:");
        for &batch in &[1usize, 5, 20, 100, 500, 1000, 2000, 5000] {
            let j = job(AppKind::Kmeans, false);
            let mut cfg = SimConfig::ramr(machine.clone());
            cfg.batch_size = batch;
            print!(" {}:{:.3e}", batch, simulate(&j, &cfg).total_ns());
        }
        println!();
    }
}
