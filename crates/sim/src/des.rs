//! An event-driven simulator of the decoupled map-combine pipeline.
//!
//! Where [`simulate`] prices the phase with closed-form steady-state rates,
//! this module *executes* it: every mapper, combiner and SPSC queue is a
//! simulation entity; production quanta, batched consumption, full-queue
//! blocking and end-of-map draining are discrete events on a virtual clock.
//! Transient effects the closed form can only approximate — pipeline
//! fill/drain, lockstep stalls on small queues, the exact blocking pattern
//! of an undersized combiner pool — fall out of the event order here.
//!
//! The two models share one cost basis (`per_thread_costs`), so their
//! agreement on steady-state-dominated configurations is a genuine
//! cross-validation of the closed form (see `closed_form_agreement` tests),
//! while their divergence on transient-dominated configurations (tiny
//! queues, tiny inputs) measures exactly the effects the closed form
//! approximates.
//!
//! [`simulate`]: crate::simulate
//!
//! # Example
//!
//! ```
//! use mrsim::{des, SimConfig, SimJob};
//! use mr_apps::AppKind;
//! use ramr_perfmodel::catalog;
//! use ramr_topology::MachineModel;
//!
//! let job = SimJob {
//!     profile: catalog::default_profile(AppKind::Histogram),
//!     input_elements: 100_000,
//!     unique_keys: 768,
//! };
//! let report = des::simulate_event_driven(&job, &SimConfig::ramr(MachineModel::haswell_server()));
//! assert_eq!(report.pairs_produced, report.pairs_consumed);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::config::{RuntimeKind, SimConfig, SimJob};
use crate::engine::{auto_split, per_thread_costs};

/// Virtual time in nanoseconds, totally ordered via a tie-breaking sequence
/// number so the simulation is deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stamp {
    time_ns: f64,
    seq: u64,
}

impl Eq for Stamp {}

impl PartialOrd for Stamp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Stamp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time_ns
            .partial_cmp(&other.time_ns)
            .expect("virtual times are finite")
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Mapper `m` finished producing its current quantum and tries to
    /// enqueue it.
    MapperQuantum(usize),
    /// Combiner `c` finished its current batch (or wakes from idle) and
    /// scans its queues.
    CombinerScan(usize),
}

/// The outcome of an event-driven run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesReport {
    /// Virtual time at which the last pair was consumed (the map-combine
    /// phase length), ns.
    pub map_combine_ns: f64,
    /// Pairs pushed by all mappers.
    pub pairs_produced: u64,
    /// Pairs popped by all combiners.
    pub pairs_consumed: u64,
    /// Number of times a mapper found its queue full and had to wait.
    pub full_queue_events: u64,
    /// Per-combiner busy time, ns (the rest is idle/waiting).
    pub combiner_busy_ns: Vec<f64>,
    /// Per-mapper busy time, ns (production only; waiting excluded).
    pub mapper_busy_ns: Vec<f64>,
    /// Mapper/combiner pool sizes used.
    pub mappers: usize,
    /// Combiner pool size used.
    pub combiners: usize,
}

impl DesReport {
    /// Average combiner utilization over the phase, in `[0, 1]`.
    pub fn combiner_utilization(&self) -> f64 {
        if self.map_combine_ns == 0.0 || self.combiner_busy_ns.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.combiner_busy_ns.iter().sum();
        busy / (self.map_combine_ns * self.combiner_busy_ns.len() as f64)
    }
}

/// State of one mapper entity.
struct Mapper {
    /// Input elements this mapper still has to map (its share of the
    /// dynamically balanced task pool is drawn lazily).
    queue_len: u64,
    /// Pairs per production quantum.
    quantum: u64,
    /// Time to produce one quantum, ns.
    quantum_ns: f64,
    /// Pairs waiting to be enqueued after a full-queue stall.
    pending: u64,
    /// Whether this mapper has mapped all of its elements and flushed.
    done: bool,
}

/// Runs the decoupled map-combine phase event by event.
///
/// Granularity: mappers produce in quanta of `batch_size` pairs (the
/// consumption granularity), so event counts stay proportional to
/// `total_pairs / batch_size`. Dynamic task balancing is approximated by
/// giving each mapper an equal share of elements up front — the closed
/// form's imbalance term covers the last-wave effect separately.
///
/// # Panics
///
/// Panics if `cfg` fails validation or names the Phoenix runtime (the
/// baseline has no queue pipeline to simulate).
pub fn simulate_event_driven(job: &SimJob, cfg: &SimConfig) -> DesReport {
    cfg.validate().expect("invalid simulation configuration");
    assert_eq!(
        cfg.runtime,
        RuntimeKind::Ramr,
        "the event-driven simulator models the decoupled pipeline only"
    );
    let (mappers, combiners) =
        if cfg.mappers > 0 { (cfg.mappers, cfg.combiners) } else { auto_split(job, cfg) };
    let costs = per_thread_costs(job, cfg, mappers, combiners);
    let e = job.profile.emits_per_elem;

    // Element shares per mapper (dynamic balancing approximated as even).
    let base = job.input_elements / mappers as u64;
    let remainder = (job.input_elements % mappers as u64) as usize;

    let quantum = cfg.batch_size as u64;
    let mut mapper_state: Vec<Mapper> = (0..mappers)
        .map(|m| {
            let elements = base + u64::from(m < remainder);
            let pairs = (elements as f64 * e).round() as u64;
            // Time to produce `quantum` pairs = quantum/e elements of work.
            let quantum_ns = quantum as f64 / e * costs.mapper_elem_ns[m];
            Mapper { queue_len: pairs, quantum, quantum_ns, pending: 0, done: pairs == 0 }
        })
        .collect();

    // SPSC queue occupancies (pairs), indexed by mapper.
    let mut occupancy = vec![0u64; mappers];
    let capacity = cfg.queue_capacity as u64;

    // Combiner bookkeeping.
    let assigned: Vec<Vec<usize>> =
        (0..combiners).map(|c| costs.plan.mappers_of_combiner(c)).collect();
    let mut combiner_busy = vec![0.0f64; combiners];
    let mut combiner_active = vec![false; combiners];
    let mut mapper_busy = vec![0.0f64; mappers];

    let mut heap: BinaryHeap<Reverse<(Stamp, Event)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut push_event = |heap: &mut BinaryHeap<Reverse<(Stamp, Event)>>, t: f64, ev: Event| {
        heap.push(Reverse((Stamp { time_ns: t, seq }, ev)));
        seq += 1;
    };

    // Kick off: every mapper starts producing its first quantum; combiners
    // start their first scan.
    for (m, state) in mapper_state.iter().enumerate() {
        if !state.done {
            push_event(
                &mut heap,
                state.quantum_ns.min(state.queue_len as f64 / e * costs.mapper_elem_ns[m]),
                Event::MapperQuantum(m),
            );
        }
    }
    for (c, active) in combiner_active.iter_mut().enumerate() {
        push_event(&mut heap, 0.0, Event::CombinerScan(c));
        *active = true;
    }

    let mut produced = 0u64;
    let mut consumed = 0u64;
    let mut full_events = 0u64;
    let mut last_consume_ns = 0.0f64;
    let total_pairs: u64 = mapper_state.iter().map(|m| m.queue_len).sum();

    /// Idle combiners re-scan after this many ns (mirrors the runtime's
    /// 50 µs sleep, scaled down since virtual polling is free).
    const IDLE_RESCAN_NS: f64 = 500.0;

    while let Some(Reverse((stamp, event))) = heap.pop() {
        let now = stamp.time_ns;
        match event {
            Event::MapperQuantum(m) => {
                let state = &mut mapper_state[m];
                if state.done && state.pending == 0 {
                    continue;
                }
                // Pairs ready to enqueue: either a freshly produced quantum
                // or a stalled batch retrying.
                let ready = if state.pending > 0 {
                    state.pending
                } else {
                    let fresh = state.quantum.min(state.queue_len);
                    state.queue_len -= fresh;
                    mapper_busy[m] += state.quantum_ns * fresh as f64 / state.quantum as f64;
                    fresh
                };
                let free = capacity - occupancy[m];
                if free == 0 {
                    // Full queue: record the stall and retry after the
                    // combiner's next consumption window.
                    state.pending = ready;
                    full_events += 1;
                    push_event(&mut heap, now + IDLE_RESCAN_NS, Event::MapperQuantum(m));
                } else {
                    let written = ready.min(free);
                    occupancy[m] += written;
                    produced += written;
                    state.pending = ready - written;
                    if state.pending > 0 {
                        full_events += 1;
                        push_event(&mut heap, now + IDLE_RESCAN_NS, Event::MapperQuantum(m));
                    } else if state.queue_len > 0 {
                        push_event(&mut heap, now + state.quantum_ns, Event::MapperQuantum(m));
                    } else {
                        state.done = true;
                    }
                    // Wake the owning combiner if it idles.
                    let c = costs.plan.combiner_of_mapper(m);
                    if !combiner_active[c] {
                        combiner_active[c] = true;
                        push_event(&mut heap, now, Event::CombinerScan(c));
                    }
                }
            }
            Event::CombinerScan(c) => {
                // Take the fullest of this combiner's queues.
                let best = assigned[c]
                    .iter()
                    .copied()
                    .max_by_key(|&m| occupancy[m])
                    .filter(|&m| occupancy[m] > 0);
                match best {
                    Some(m) => {
                        let take = occupancy[m].min(cfg.batch_size as u64);
                        occupancy[m] -= take;
                        consumed += take;
                        let busy = take as f64 * costs.pair_ns[c];
                        combiner_busy[c] += busy;
                        if consumed == total_pairs {
                            last_consume_ns = now + busy;
                        }
                        push_event(&mut heap, now + busy, Event::CombinerScan(c));
                    }
                    None => {
                        let all_done = assigned[c]
                            .iter()
                            .all(|&m| mapper_state[m].done && mapper_state[m].pending == 0);
                        if all_done {
                            combiner_active[c] = false; // retires
                        } else {
                            push_event(&mut heap, now + IDLE_RESCAN_NS, Event::CombinerScan(c));
                        }
                    }
                }
            }
        }
        if consumed == total_pairs && mapper_state.iter().all(|s| s.done && s.pending == 0) {
            break;
        }
    }

    debug_assert_eq!(produced, consumed, "every produced pair must be consumed");
    DesReport {
        map_combine_ns: last_consume_ns,
        pairs_produced: produced,
        pairs_consumed: consumed,
        full_queue_events: full_events,
        combiner_busy_ns: combiner_busy,
        mapper_busy_ns: mapper_busy,
        mappers,
        combiners,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use mr_apps::AppKind;
    use ramr_perfmodel::catalog;
    use ramr_topology::MachineModel;

    fn job(app: AppKind, elements: u64) -> SimJob {
        SimJob {
            profile: catalog::default_profile(app),
            input_elements: elements,
            unique_keys: 1000,
        }
    }

    fn cfg() -> SimConfig {
        SimConfig::ramr(MachineModel::haswell_server())
    }

    #[test]
    fn conservation_every_pair_produced_is_consumed() {
        for app in AppKind::ALL {
            let r = simulate_event_driven(&job(app, 50_000), &cfg());
            assert_eq!(r.pairs_produced, r.pairs_consumed, "{app}");
            assert!(r.map_combine_ns > 0.0, "{app}");
        }
    }

    #[test]
    fn determinism() {
        let a = simulate_event_driven(&job(AppKind::WordCount, 80_000), &cfg());
        let b = simulate_event_driven(&job(AppKind::WordCount, 80_000), &cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn closed_form_agreement_on_steady_state() {
        // On large, balanced runs the event-driven phase time must agree
        // with the closed-form model within a modest factor (they share the
        // cost basis; the difference is transients vs steady state).
        for app in [AppKind::Histogram, AppKind::WordCount, AppKind::Kmeans] {
            let j = job(app, 2_000_000);
            let des = simulate_event_driven(&j, &cfg());
            let closed = simulate(&j, &cfg());
            let ratio = des.map_combine_ns / closed.map_combine_ns;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{app}: DES {:.3e} vs closed form {:.3e} (ratio {ratio:.2})",
                des.map_combine_ns,
                closed.map_combine_ns
            );
        }
    }

    #[test]
    fn tiny_queues_block_producers() {
        let j = job(AppKind::Histogram, 100_000);
        let mut small = cfg();
        small.queue_capacity = 8;
        small.batch_size = 8;
        let r = simulate_event_driven(&j, &small);
        assert!(r.full_queue_events > 0, "8-slot queues must stall under HG's fan-out");
        let mut large = cfg();
        large.queue_capacity = 100_000;
        large.batch_size = 8;
        let r_large = simulate_event_driven(&j, &large);
        assert!(r_large.full_queue_events < r.full_queue_events);
    }

    #[test]
    fn undersized_combiner_pool_saturates() {
        let j = job(AppKind::WordCount, 200_000);
        let mut starved = cfg();
        starved.mappers = 54;
        starved.combiners = 2;
        let r = simulate_event_driven(&j, &starved);
        assert!(
            r.combiner_utilization() > 0.9,
            "2 combiners against 54 WC mappers must saturate, got {:.2}",
            r.combiner_utilization()
        );
        let mut balanced = cfg();
        balanced.mappers = 28;
        balanced.combiners = 28;
        let b = simulate_event_driven(&j, &balanced);
        assert!(b.map_combine_ns < r.map_combine_ns, "balancing the pools must help WC");
    }

    #[test]
    fn batching_reduces_phase_time_in_the_event_model_too() {
        let j = job(AppKind::Histogram, 300_000);
        let mut unbatched = cfg();
        unbatched.batch_size = 1;
        let mut batched = cfg();
        batched.batch_size = 1000;
        let r1 = simulate_event_driven(&j, &unbatched);
        let r1000 = simulate_event_driven(&j, &batched);
        assert!(
            r1000.map_combine_ns < r1.map_combine_ns,
            "batch 1000 {:.3e} must beat batch 1 {:.3e}",
            r1000.map_combine_ns,
            r1.map_combine_ns
        );
    }

    #[test]
    fn empty_input_terminates_immediately() {
        let r = simulate_event_driven(&job(AppKind::Histogram, 0), &cfg());
        assert_eq!(r.pairs_produced, 0);
        assert_eq!(r.map_combine_ns, 0.0);
    }

    #[test]
    #[should_panic(expected = "decoupled pipeline only")]
    fn phoenix_is_rejected() {
        let mut c = cfg();
        c.runtime = RuntimeKind::Phoenix;
        let _ = simulate_event_driven(&job(AppKind::Histogram, 10), &c);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mr_apps::AppKind;
    use proptest::prelude::*;
    use ramr_perfmodel::catalog;
    use ramr_topology::MachineModel;

    fn app_strategy() -> impl Strategy<Value = AppKind> {
        prop_oneof![
            Just(AppKind::WordCount),
            Just(AppKind::Histogram),
            Just(AppKind::LinearRegression),
            Just(AppKind::Kmeans),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// For arbitrary valid configurations the event-driven simulator
        /// terminates, conserves pairs, and stays deterministic.
        #[test]
        fn des_invariants_hold_for_arbitrary_configs(
            app in app_strategy(),
            elements in 1u64..60_000,
            combiner_div in 2usize..8,
            batch_pow in 0u32..7,
            capacity_mult in 1usize..6,
            haswell in any::<bool>(),
        ) {
            let machine = if haswell {
                MachineModel::haswell_server()
            } else {
                MachineModel::xeon_phi()
            };
            let total = machine.logical_cpus();
            let combiners = (total / combiner_div).max(1);
            let batch = 1usize << batch_pow;
            let mut cfg = SimConfig::ramr(machine);
            cfg.mappers = total - combiners;
            cfg.combiners = combiners;
            cfg.batch_size = batch;
            cfg.queue_capacity = batch * capacity_mult;
            let job = SimJob {
                profile: catalog::default_profile(app),
                input_elements: elements,
                unique_keys: 100,
            };
            let a = simulate_event_driven(&job, &cfg);
            prop_assert_eq!(a.pairs_produced, a.pairs_consumed);
            prop_assert!(a.map_combine_ns.is_finite());
            prop_assert!(a.map_combine_ns >= 0.0);
            let b = simulate_event_driven(&job, &cfg);
            prop_assert_eq!(a, b);
        }

        /// The closed-form model never returns non-finite or non-positive
        /// times for arbitrary valid configurations, and more input never
        /// takes less time.
        #[test]
        fn closed_form_sanity_for_arbitrary_configs(
            app in app_strategy(),
            elements in 1_000u64..10_000_000,
            batch_pow in 0u32..12,
            task_pow in 4u32..20,
        ) {
            let mut cfg = SimConfig::ramr(MachineModel::haswell_server());
            cfg.batch_size = (1usize << batch_pow).min(cfg.queue_capacity);
            cfg.task_size = 1usize << task_pow;
            let job = |n| SimJob {
                profile: catalog::default_profile(app),
                input_elements: n,
                unique_keys: 1000,
            };
            let small = crate::simulate(&job(elements), &cfg);
            let large = crate::simulate(&job(elements * 2), &cfg);
            prop_assert!(small.total_ns().is_finite() && small.total_ns() > 0.0);
            prop_assert!(large.map_combine_ns >= small.map_combine_ns);
        }
    }
}
