//! `mrsim`: a deterministic performance model of Phoenix++-style and RAMR
//! MapReduce execution on parametric machine models.
//!
//! # Why a model
//!
//! The paper's evaluation ran on a 56-thread Haswell server and a
//! 228-thread Xeon Phi. This reproduction executes on whatever machine CI
//! provides (possibly a single core), where wall-clock comparisons between
//! the two runtimes are physically meaningless. `mrsim` instead *prices*
//! both runtimes' execution on a [`ramr_topology::MachineModel`], using the
//! per-element cost decomposition of `ramr-perfmodel`, and reproduces the
//! paper's figures as deterministic functions of the same mechanisms the
//! paper invokes:
//!
//! * **Serialized stall exposure (baseline)** — a Phoenix++ worker runs map
//!   and combine back to back on one thread; each side's stall cycles are
//!   dead time the other side's work cannot fill (the out-of-order window
//!   does not bridge the emit boundary). The decoupled runtime overlaps
//!   them *by construction*, which is the paper's §IV-E suitability
//!   argument: high-stall workloads have head-room, stall-free workloads do
//!   not.
//! * **SMT resource sharing** — co-resident hardware threads share issue
//!   bandwidth; a compute-bound mapper and a memory-bound combiner coexist
//!   cheaply, two identical mixed workers do not.
//! * **Queue costs** — every decoupled pair pays push/pop control work, a
//!   cache-distance-priced transfer (set by the pinning policy), batch
//!   amortization of the control synchronization, and a locality penalty
//!   once a batch overflows the consumer's L1 share — the mechanisms behind
//!   Figs 5, 6 and 7.
//! * **Memory-bandwidth contention** — per-socket streaming demand beyond
//!   the sustainable bandwidth stretches execution.
//!
//! All constants are named, documented, and calibrated once against the
//! paper's reported numbers (see `calibration` tests and EXPERIMENTS.md);
//! nothing is fitted per figure.
//!
//! # Example
//!
//! ```
//! use mrsim::{simulate, RuntimeKind, SimConfig, SimJob};
//! use ramr_perfmodel::catalog;
//! use mr_apps::AppKind;
//! use ramr_topology::MachineModel;
//!
//! let job = SimJob {
//!     profile: catalog::default_profile(AppKind::Kmeans),
//!     input_elements: 2_000_000,
//!     unique_keys: 64,
//! };
//! let machine = MachineModel::haswell_server();
//! let phoenix = simulate(&job, &SimConfig::phoenix(machine.clone()));
//! let ramr = simulate(&job, &SimConfig::ramr(machine));
//! let speedup = phoenix.total_ns() / ramr.total_ns();
//! assert!(speedup > 1.0, "KMeans profits from RAMR (paper Fig 8a)");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
pub mod des;
mod engine;

pub use config::{RuntimeKind, SimConfig, SimJob, SimReport};
pub use engine::{auto_split, simulate};
