//! Simulation inputs and outputs.

use mr_core::RuntimeError;
use ramr_perfmodel::WorkloadProfile;
use ramr_topology::{MachineModel, PinningPolicy};

/// Which runtime's execution structure to price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeKind {
    /// Phoenix++-style: every worker maps and combines serially.
    Phoenix,
    /// RAMR: decoupled mapper and combiner pools joined by SPSC queues.
    Ramr,
}

impl std::fmt::Display for RuntimeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RuntimeKind::Phoenix => "phoenix++",
            RuntimeKind::Ramr => "ramr",
        })
    }
}

/// The workload to price: a profile plus its scale.
#[derive(Debug, Clone, PartialEq)]
pub struct SimJob {
    /// Per-element cost description (see `ramr_perfmodel::catalog`).
    pub profile: WorkloadProfile,
    /// Number of input elements.
    pub input_elements: u64,
    /// Distinct intermediate keys each container ends up holding (bounds
    /// the reduce/merge phases).
    pub unique_keys: u64,
}

/// One simulated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The machine to execute on.
    pub machine: MachineModel,
    /// Runtime structure.
    pub runtime: RuntimeKind,
    /// Total hardware threads used. Phoenix spawns this many workers; RAMR
    /// splits it into mappers + combiners.
    pub total_threads: usize,
    /// RAMR mapper-pool size; `0` = derive from the profile's map/combine
    /// throughput ratio ([`auto_split`]). Ignored by Phoenix.
    ///
    /// [`auto_split`]: crate::auto_split
    pub mappers: usize,
    /// RAMR combiner-pool size; `0` = derive. Ignored by Phoenix.
    pub combiners: usize,
    /// Thread placement policy.
    pub pinning: PinningPolicy,
    /// Batched-read size (elements per consume); `1` disables batching.
    pub batch_size: usize,
    /// SPSC queue capacity in elements.
    pub queue_capacity: usize,
    /// Input elements per map task.
    pub task_size: usize,
    /// Whether mappers busy-wait (rather than sleep) on a full queue.
    pub busy_wait_push: bool,
}

impl SimConfig {
    /// The paper's Phoenix++ setup on `machine`: one worker per hardware
    /// thread.
    pub fn phoenix(machine: MachineModel) -> Self {
        let threads = machine.logical_cpus();
        Self {
            machine,
            runtime: RuntimeKind::Phoenix,
            total_threads: threads,
            mappers: 0,
            combiners: 0,
            pinning: PinningPolicy::Ramr,
            batch_size: 1000,
            queue_capacity: 5000,
            task_size: 4096,
            busy_wait_push: false,
        }
    }

    /// The paper's default RAMR setup on `machine`: all hardware threads,
    /// auto-derived mapper/combiner split, RAMR pinning, queue capacity
    /// 5000, batch size 1000, sleep-on-failed-push.
    pub fn ramr(machine: MachineModel) -> Self {
        Self { runtime: RuntimeKind::Ramr, ..Self::phoenix(machine) }
    }

    /// Validates pool arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] when thread counts or sizing
    /// knobs are zero or inconsistent.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        if self.total_threads == 0 {
            return Err(RuntimeError::InvalidConfig("total_threads must be nonzero".into()));
        }
        if self.batch_size == 0 || self.queue_capacity == 0 || self.task_size == 0 {
            return Err(RuntimeError::InvalidConfig(
                "batch_size, queue_capacity and task_size must be nonzero".into(),
            ));
        }
        if self.batch_size > self.queue_capacity {
            return Err(RuntimeError::InvalidConfig(
                "batch_size must not exceed queue_capacity".into(),
            ));
        }
        if self.runtime == RuntimeKind::Ramr && (self.mappers != 0) != (self.combiners != 0) {
            return Err(RuntimeError::InvalidConfig(
                "set both mappers and combiners, or neither (auto split)".into(),
            ));
        }
        if self.mappers != 0 && self.combiners > self.mappers {
            return Err(RuntimeError::InvalidConfig(
                "combiner pool must not exceed mapper pool".into(),
            ));
        }
        Ok(())
    }
}

/// The priced execution of one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Input partitioning time, ns.
    pub partition_ns: f64,
    /// Map-combine phase time, ns (overlapped for RAMR).
    pub map_combine_ns: f64,
    /// Reduce phase time, ns.
    pub reduce_ns: f64,
    /// Merge phase time, ns.
    pub merge_ns: f64,
    /// Fraction of the map-combine phase spent on queue work (push + pop +
    /// transfer); zero for Phoenix. High values flag RAMR-unsuitable
    /// (lightweight) workloads.
    pub queue_overhead_fraction: f64,
    /// Per-socket memory-bandwidth utilization during map-combine (>1 means
    /// the phase was bandwidth-stretched).
    pub bandwidth_utilization: f64,
    /// Mapper pool utilization in the steady state (1.0 = mappers are the
    /// bottleneck; <1 means they blocked on full queues).
    pub mapper_utilization: f64,
    /// RAMR mapper-pool size actually used (after auto split).
    pub mappers: usize,
    /// RAMR combiner-pool size actually used (after auto split).
    pub combiners: usize,
}

impl SimReport {
    /// Total wall-clock time, ns.
    pub fn total_ns(&self) -> f64 {
        self.partition_ns + self.map_combine_ns + self.reduce_ns + self.merge_ns
    }

    /// Fraction of total time spent in the map-combine phase (Fig 1).
    pub fn map_combine_fraction(&self) -> f64 {
        self.map_combine_ns / self.total_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        SimConfig::phoenix(MachineModel::haswell_server()).validate().unwrap();
        SimConfig::ramr(MachineModel::xeon_phi()).validate().unwrap();
    }

    #[test]
    fn rejects_inconsistent_pools() {
        let mut c = SimConfig::ramr(MachineModel::haswell_server());
        c.mappers = 4;
        assert!(c.validate().is_err(), "mappers without combiners");
        c.combiners = 8;
        assert!(c.validate().is_err(), "combiners > mappers");
        c.combiners = 2;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_zero_knobs() {
        let mut c = SimConfig::phoenix(MachineModel::haswell_server());
        c.batch_size = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::phoenix(MachineModel::haswell_server());
        c.batch_size = 100;
        c.queue_capacity = 10;
        assert!(c.validate().is_err());
        let mut c = SimConfig::phoenix(MachineModel::haswell_server());
        c.total_threads = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn report_totals_and_fractions() {
        let r = SimReport {
            partition_ns: 10.0,
            map_combine_ns: 80.0,
            reduce_ns: 7.0,
            merge_ns: 3.0,
            queue_overhead_fraction: 0.1,
            bandwidth_utilization: 0.5,
            mapper_utilization: 1.0,
            mappers: 4,
            combiners: 2,
        };
        assert_eq!(r.total_ns(), 100.0);
        assert!((r.map_combine_fraction() - 0.8).abs() < 1e-12);
    }
}
