//! The pricing engine: closed-form throughput/latency model of both
//! runtimes' map-combine phase plus the shared reduce/merge tail.

use ramr_perfmodel::phase_cost;
use ramr_topology::{CommDistance, MachineModel, PlacementPlan, ThreadRef};

use crate::config::{RuntimeKind, SimConfig, SimJob, SimReport};

// ---------------------------------------------------------------------------
// Model constants. Each is calibrated ONCE against the paper's published
// numbers (see EXPERIMENTS.md) and then reused unchanged for every figure.
// ---------------------------------------------------------------------------

/// Serialized stall exposure: how much more a stall cycle costs when map and
/// combine are *inlined on one thread* (Phoenix++) rather than decoupled.
/// Inline combining interleaves the container's dependent accesses with the
/// map loop, defeating the out-of-order window and the compiler's loop
/// pipelining across the emit boundary; the co-resident SMT sibling runs the
/// *same* mixed workload and contends for exactly the same resources instead
/// of filling the gaps. RAMR's pipelined threads each pay their stalls once,
/// overlapped with the partner's work — precisely the head-room argument of
/// paper §IV-E (high-stall workloads profit, stall-free ones cannot).
const SERIAL_STALL_EXPOSURE: f64 = 6.0;

/// Cycles to invoke the inline emit/combine machinery per pair (Phoenix++).
const EMIT_CYCLES: f64 = 4.0;

/// Cycles for one SPSC push (store + control bookkeeping), excluding the
/// distance-priced RFO of the ring-buffer line (added per placement).
const PUSH_CYCLES: f64 = 14.0;

/// Cycles of per-element consume work, excluding synchronization.
const POP_CYCLES: f64 = 5.0;

/// Cycles of control-variable synchronization per *batch* (one head update
/// plus the producer's next full-check). At batch size 1 this is paid per
/// element — the congestion the paper's batched reads eliminate.
const BATCH_SYNC_CYCLES: f64 = 70.0;

/// Maximum discount on the per-line transfer cost for contiguous batched
/// reads (hardware prefetch across the ring buffer run).
const CONTIG_DISCOUNT_MAX: f64 = 0.75;

/// Extra cost multiplier for threads the OS may migrate (cold caches).
const MIGRATION_PENALTY: f64 = 1.12;

/// Per-task dispatch overhead (dequeue, closure call), ns.
const TASK_OVERHEAD_NS: f64 = 500.0;

/// Partitioning cost per task, ns.
const PARTITION_NS_PER_TASK: f64 = 50.0;

/// Reduce-phase cost per partial pair (hash fold), cycles.
const REDUCE_CYCLES_PER_PAIR: f64 = 60.0;

/// Merge-phase cost per output key per merge level, cycles.
const MERGE_CYCLES_PER_KEY: f64 = 25.0;

/// Combiner wake-up latency fraction when sleeping on empty/full queues.
const SLEEP_WAKE_PENALTY: f64 = 1.01;

/// Core-resource theft when a busy-waiting mapper shares a core with the
/// combiner it is waiting for (the pathology sleep-on-failed-push fixes).
const BUSY_WAIT_CORE_THEFT: f64 = 0.35;

/// Extra stall exposure on in-order cores (the Xeon Phi's KNC pipeline
/// blocks on the first stalled instruction).
const IN_ORDER_EXPOSURE_FACTOR: f64 = 1.75;

/// Producer/consumer lockstep penalty coefficient for queues whose capacity
/// is not comfortably above the producers' burstiness.
const QUEUE_COUPLING_FACTOR: f64 = 0.3;

/// Typical burst of pairs a map task produces before the consumer reacts.
const PRODUCER_BURST_ELEMENTS: f64 = 512.0;

// ---------------------------------------------------------------------------

/// Derives the mapper/combiner pool sizes by searching the split that
/// maximizes the modeled map-combine throughput, as the paper prescribes:
/// the ratio "is application dependent and is driven by the throughput of
/// the map and combine functions" and is finely tuned per invocation. The
/// search prices each candidate with the full placement-aware rate model,
/// so it accounts for queue distances and SMT sharing, not just raw phase
/// costs.
pub fn auto_split(job: &SimJob, cfg: &SimConfig) -> (usize, usize) {
    let total = cfg.total_threads;
    if total == 1 {
        return (1, 1); // degenerate: one thread plays both roles in turn
    }
    // Evaluate candidates at a nominal batch size so the chosen ratio does
    // not flip across a batch-size sensitivity sweep (the paper tunes the
    // ratio per application, then sweeps the other knobs around it).
    let mut nominal = cfg.clone();
    nominal.batch_size = 256;
    nominal.queue_capacity = nominal.queue_capacity.max(256);
    let mut best = (total - 1, 1);
    let mut best_rate = 0.0;
    for combiners in 1..=total / 2 {
        let mappers = total - combiners;
        let (rate, _, _) = map_combine_rate(job, &nominal, mappers, combiners);
        if rate > best_rate {
            best_rate = rate;
            best = (mappers, combiners);
        }
    }
    best
}

/// Fraction of a batch's bytes that spill past the consumer's effective L1
/// window (twice the L1 share: the batch competes with the container's hot
/// set) — the locality cliff behind Fig 7's U-curves, and the reason the
/// Xeon Phi (a quarter of the per-thread L1) prefers much smaller batches.
fn l1_spill_fraction(machine: &MachineModel, batch: usize, pair_bytes: u64) -> f64 {
    let window = 2.0 * f64::from(machine.l1d_kb) * 1024.0 / machine.smt as f64;
    let batch_bytes = batch as f64 * pair_bytes as f64;
    (1.0 - window / batch_bytes).max(0.0)
}

/// Per-pair queue *produce* cost: the push bookkeeping plus the
/// request-for-ownership of a ring-buffer line the consumer read last —
/// crossing the pair's cache distance.
fn push_ns(
    machine: &MachineModel,
    distance: CommDistance,
    pair_bytes: u64,
    serialize_instr: f64,
) -> f64 {
    let cyc = machine.cycle_ns();
    let lines = pair_bytes.div_ceil(64).max(1) as f64;
    (PUSH_CYCLES + serialize_instr) * cyc + 0.5 * lines * machine.transfer_cost_ns(distance)
}

/// Per-pair queue consume cost for one mapper→combiner link.
fn pop_ns(machine: &MachineModel, distance: CommDistance, batch: usize, pair_bytes: u64) -> f64 {
    let cyc = machine.cycle_ns();
    let lines = pair_bytes.div_ceil(64).max(1) as f64;
    let dist_ns = machine.transfer_cost_ns(distance);
    // Contiguous batched reads let the prefetcher overlap at most half of
    // the transfer latency; the line still crosses the interconnect.
    let discount = CONTIG_DISCOUNT_MAX * (1.0 - 1.0 / batch as f64);
    let transfer = lines * dist_ns * (1.0 - 0.5 * discount);
    // One control sync per batch: a head-index update plus the producer's
    // re-read — a round trip at the pair's cache distance. At batch size 1
    // this ping-pong happens per element (the congestion the paper's
    // batched reads remove).
    let sync = (BATCH_SYNC_CYCLES * cyc + 2.0 * dist_ns) / batch as f64;
    // Batches overflowing the L1 window are re-fetched from the next level.
    let spill =
        0.5 * l1_spill_fraction(machine, batch, pair_bytes) * lines * machine.lat.same_socket_ns;
    POP_CYCLES * cyc + transfer + sync + spill
}

/// Load imbalance multiplier of the dynamic task queue: too-large tasks
/// leave threads idle in the last wave (or entirely), too-small tasks are
/// priced separately via [`TASK_OVERHEAD_NS`].
fn imbalance(input_elements: u64, task_size: usize, threads: usize) -> f64 {
    let tasks = (input_elements as f64 / task_size as f64).max(1.0);
    let threads = threads as f64;
    if tasks < threads {
        threads / tasks
    } else {
        1.0 + 0.5 * threads / tasks
    }
}

/// Memory-bandwidth stretch factor: demand beyond the sockets' sustainable
/// bandwidth extends the phase proportionally.
fn bandwidth_stretch(machine: &MachineModel, streaming_bytes_per_ns: f64) -> (f64, f64) {
    let capacity = machine.mem_bw_gbs * machine.sockets as f64; // GB/s == B/ns
    let utilization = streaming_bytes_per_ns / capacity;
    (utilization, utilization.max(1.0))
}

fn streaming_bytes(phase: &ramr_perfmodel::PhaseProfile) -> f64 {
    match phase.access {
        ramr_perfmodel::AccessPattern::Streaming { bytes_per_elem } => bytes_per_elem,
        _ => 0.0,
    }
}

/// The reduce + merge tail, shared by both runtimes (paper: "the rest MR
/// execution remains unchanged"). The number of *partial containers* differs
/// though: one per worker for Phoenix++, one per combiner for RAMR — fewer,
/// larger partials are part of the decoupled design.
fn tail_phases(
    job: &SimJob,
    machine: &MachineModel,
    threads: usize,
    containers: usize,
) -> (f64, f64) {
    let cyc = machine.cycle_ns();
    // Each container holds at most `unique_keys` partials, and the whole
    // run produces at most one partial per emitted pair (jobs like PCA emit
    // every key exactly once, so container count does not multiply them).
    let total_emits = job.input_elements as f64 * job.profile.emits_per_elem;
    let partial_pairs = (job.unique_keys as f64 * containers as f64).min(total_emits);
    let reduce = partial_pairs * REDUCE_CYCLES_PER_PAIR * cyc / threads as f64;
    let levels = (threads as f64).log2().max(1.0);
    let merge = job.unique_keys as f64 * MERGE_CYCLES_PER_KEY * levels * cyc / threads as f64;
    (reduce, merge)
}

/// Prices one configuration.
///
/// # Panics
///
/// Panics if `cfg` fails [`SimConfig::validate`] — harnesses validate at
/// construction.
pub fn simulate(job: &SimJob, cfg: &SimConfig) -> SimReport {
    cfg.validate().expect("invalid simulation configuration");
    match cfg.runtime {
        RuntimeKind::Phoenix => simulate_phoenix(job, cfg),
        RuntimeKind::Ramr => simulate_ramr(job, cfg),
    }
}

fn simulate_phoenix(job: &SimJob, cfg: &SimConfig) -> SimReport {
    let machine = &cfg.machine;
    let cyc = machine.cycle_ns();
    let threads = cfg.total_threads;
    let map = phase_cost(&job.profile.map, machine);
    let combine = phase_cost(&job.profile.combine, machine);
    let e = job.profile.emits_per_elem;

    // Serialized per-element cost: map, then e inline combines. Dependency
    // and irregular-access stalls are *exposed* (the OoO window cannot
    // bridge the inline emit boundary); streaming stalls are already
    // bandwidth-bound and pass through unchanged.
    let compute = map.compute_ns + e * (combine.compute_ns + EMIT_CYCLES * cyc);
    // Only dependency-chain stalls and irregular-access misses are exposed:
    // streaming misses are bandwidth-bound regardless of structure, and
    // LSQ occupancy is part of the pipeline either way.
    let exposed_of = |phase: &ramr_perfmodel::PhaseProfile, cost: &ramr_perfmodel::PhaseCost| {
        let mem = match phase.access {
            ramr_perfmodel::AccessPattern::Irregular { .. } => cost.mem_stall_ns,
            _ => 0.0,
        };
        mem + cost.dependency_stall_ns
    };
    let exposed =
        exposed_of(&job.profile.map, &map) + e * exposed_of(&job.profile.combine, &combine);
    let raw = map.mem_stall_ns
        + map.resource_stall_ns()
        + e * (combine.mem_stall_ns + combine.resource_stall_ns());
    let passthrough = raw - exposed;

    // SMT sharing: every core hosts `threads_per_core` identical mixed
    // workers contending for issue slots (utilization taken on the
    // un-exposed mix — contention is physical, not model-inflated).
    let threads_per_core = threads.div_ceil(machine.physical_cores());
    let u = compute / (compute + raw);
    let smt_factor = (threads_per_core as f64 * u).max(1.0);
    // In-order cores (Xeon Phi) cannot slide past a stalled inline combine
    // at all; the exposure is correspondingly deeper.
    let exposure =
        SERIAL_STALL_EXPOSURE * if machine.in_order { IN_ORDER_EXPOSURE_FACTOR } else { 1.0 };
    let elem_ns = compute * smt_factor + passthrough + exposed * exposure;

    // Aggregate streaming demand vs. machine bandwidth.
    let rate_total = threads as f64 / elem_ns; // elements per ns
    let stream = streaming_bytes(&job.profile.map) + e * streaming_bytes(&job.profile.combine);
    let (bw_util, stretch) = bandwidth_stretch(machine, rate_total * stream);

    let n = job.input_elements as f64;
    let tasks = (n / cfg.task_size as f64).ceil().max(1.0);
    let map_combine_ns = n * elem_ns / threads as f64
        * imbalance(job.input_elements, cfg.task_size, threads)
        * stretch
        + tasks * TASK_OVERHEAD_NS / threads as f64;

    let (reduce_ns, merge_ns) = tail_phases(job, machine, threads, threads);
    SimReport {
        partition_ns: tasks * PARTITION_NS_PER_TASK,
        map_combine_ns,
        reduce_ns,
        merge_ns,
        queue_overhead_fraction: 0.0,
        bandwidth_utilization: bw_util,
        mapper_utilization: 1.0,
        mappers: threads,
        combiners: 0,
    }
}

/// Computes the map-combine steady-state rate (input elements per ns) for a
/// given split, along with the map-side-only rate and the average pair cost
/// (for drain accounting). Shared by [`auto_split`]'s search and the full
/// simulation.
/// Contention-adjusted per-thread costs for one (mappers, combiners) split:
/// the placement plan, each mapper's per-input-element time (including its
/// pushes) and each combiner's per-pair time (including its batched pops).
/// Shared by the closed-form rate model and the event-driven simulator.
pub(crate) struct ThreadCosts {
    pub plan: PlacementPlan,
    pub mapper_elem_ns: Vec<f64>,
    pub pair_ns: Vec<f64>,
}

pub(crate) fn per_thread_costs(
    job: &SimJob,
    cfg: &SimConfig,
    mappers: usize,
    combiners: usize,
) -> ThreadCosts {
    let machine = &cfg.machine;
    let plan =
        PlacementPlan::compute(machine, mappers, combiners, cfg.pinning).expect("validated pools");

    let map = phase_cost(&job.profile.map, machine);
    let combine = phase_cost(&job.profile.combine, machine);
    let e = job.profile.emits_per_elem;

    // Issue-slot utilization each role demands of its hardware thread. A
    // combiner only contends while it is actually consuming, so its raw
    // utilization is weighted by an estimated duty cycle (offered pair load
    // over consume capacity, un-inflated first-order estimate).
    let u_map = map.cpu_utilization();
    let naive_map_elem =
        map.total_ns() + e * (PUSH_CYCLES + job.profile.pair_serialize_instr) * machine.cycle_ns();
    let naive_pair = combine.total_ns() + POP_CYCLES * machine.cycle_ns();
    let mut combiner_duty = vec![1.0f64; combiners];
    for (c, duty) in combiner_duty.iter_mut().enumerate() {
        let group_rate = plan.mappers_of_combiner(c).len() as f64 / naive_map_elem;
        *duty = (group_rate * e * naive_pair).min(1.0);
    }
    let u_combine = combine.cpu_utilization();

    // Per-core contention factors from the actual placement.
    let core_factor = |residents: &[ThreadRef]| -> f64 {
        let demand: f64 = residents
            .iter()
            .map(|t| match t {
                ThreadRef::Mapper(_) => u_map,
                ThreadRef::Combiner(c) => u_combine * combiner_duty[*c],
            })
            .sum();
        demand.max(1.0)
    };
    let by_core = plan.threads_by_core();
    let mut mapper_factor = vec![1.0f64; mappers];
    let mut combiner_factor = vec![1.0f64; combiners];
    if by_core.is_empty() {
        // Unpinned: expected contention plus migration penalty.
        let avg_duty = combiner_duty.iter().sum::<f64>() / combiners as f64;
        let total_u = mappers as f64 * u_map + combiners as f64 * u_combine * avg_duty;
        let f = (total_u / machine.physical_cores() as f64).max(1.0) * MIGRATION_PENALTY;
        mapper_factor.fill(f);
        combiner_factor.fill(f);
    } else {
        for residents in by_core.values() {
            let f = core_factor(residents);
            for t in residents {
                match t {
                    ThreadRef::Mapper(m) => mapper_factor[*m] = f,
                    ThreadRef::Combiner(c) => combiner_factor[*c] = f,
                }
            }
        }
    }

    // Mapper-side time per input element: the map work (compute inflated by
    // core sharing) plus e pushes priced at this mapper's queue distance.
    let mapper_elem_ns: Vec<f64> = (0..mappers)
        .map(|m| {
            let push = push_ns(
                machine,
                plan.mapper_combiner_distance(m),
                job.profile.pair_bytes,
                job.profile.pair_serialize_instr,
            );
            map.compute_ns * mapper_factor[m]
                + map.mem_stall_ns
                + map.resource_stall_ns()
                + e * push
        })
        .collect();

    // Combiner-side time per pair, per combiner (distance depends on its
    // mappers' placement).
    let pair_ns: Vec<f64> = (0..combiners)
        .map(|c| {
            let assigned = plan.mappers_of_combiner(c);
            let avg_pop: f64 = assigned
                .iter()
                .map(|&m| {
                    pop_ns(
                        machine,
                        plan.mapper_combiner_distance(m),
                        cfg.batch_size,
                        job.profile.pair_bytes,
                    )
                })
                .sum::<f64>()
                / assigned.len() as f64;
            combine.compute_ns * combiner_factor[c]
                + combine.mem_stall_ns
                + combine.resource_stall_ns()
                + avg_pop
        })
        .collect();

    ThreadCosts { plan, mapper_elem_ns, pair_ns }
}

fn map_combine_rate(
    job: &SimJob,
    cfg: &SimConfig,
    mappers: usize,
    combiners: usize,
) -> (f64, f64, f64) {
    let ThreadCosts { plan, mapper_elem_ns, pair_ns } =
        per_thread_costs(job, cfg, mappers, combiners);
    let e = job.profile.emits_per_elem;
    let combiners = pair_ns.len();

    // Per-group pipelined throughput: the dynamic task queue load-balances
    // *time* across mappers, so each combiner group contributes
    // min(its mappers' map rate, its combiner's consume rate) and the
    // machine's throughput is the sum over groups.
    let mut rate = 0.0; // input elements per ns
    let mut map_side_rate = 0.0;
    let mut any_blocked = false;
    for (c, pair_ns_c) in pair_ns.iter().enumerate() {
        let group = plan.mappers_of_combiner(c);
        let group_map_rate: f64 = group.iter().map(|&m| 1.0 / mapper_elem_ns[m]).sum();
        let combiner_rate = 1.0 / (pair_ns_c * e); // input elements per ns
        map_side_rate += group_map_rate;
        if combiner_rate < group_map_rate {
            any_blocked = true;
            // The group's mappers block on full queues; busy-waiting ones
            // additionally steal issue slots from the co-located combiner
            // (the pathology sleep-on-failed-push fixes).
            let throttle = if cfg.busy_wait_push {
                1.0 / (1.0 + BUSY_WAIT_CORE_THEFT)
            } else {
                1.0 / SLEEP_WAKE_PENALTY
            };
            rate += combiner_rate * throttle;
        } else {
            rate += group_map_rate;
        }
    }
    let _ = any_blocked;
    let avg_pair = pair_ns.iter().sum::<f64>() / combiners as f64;
    (rate, map_side_rate, avg_pair)
}

fn simulate_ramr(job: &SimJob, cfg: &SimConfig) -> SimReport {
    let machine = &cfg.machine;
    let (mappers, combiners) =
        if cfg.mappers > 0 { (cfg.mappers, cfg.combiners) } else { auto_split(job, cfg) };
    let plan =
        PlacementPlan::compute(machine, mappers, combiners, cfg.pinning).expect("validated pools");
    let map = phase_cost(&job.profile.map, machine);
    let combine = phase_cost(&job.profile.combine, machine);
    let e = job.profile.emits_per_elem;
    let (rate, map_side_rate, avg_pair) = map_combine_rate(job, cfg, mappers, combiners);

    let n = job.input_elements as f64;
    let mut phase = n / rate * imbalance(job.input_elements, cfg.task_size, mappers);
    let mapper_utilization = (rate / map_side_rate).min(1.0);

    // Queue coupling: a capacity without comfortable slack above the
    // producers' burstiness runs the pair in lockstep, stalling both sides.
    // Capacity 5000 keeps the penalty under ~3% — the paper's "within 2% of
    // optimal" finding — while small queues degrade visibly.
    let coupling = 1.0
        + QUEUE_COUPLING_FACTOR * (PRODUCER_BURST_ELEMENTS + cfg.batch_size as f64 / 8.0)
            / cfg.queue_capacity as f64;
    phase *= coupling;

    // Pipeline drain: after the last map task the queues still hold up to
    // capacity elements, consumed in batches.
    let drain = (cfg.queue_capacity as f64 / 2.0 + cfg.batch_size as f64) * avg_pair;
    phase += drain;

    // Bandwidth: map streaming plus cross-socket queue traffic.
    let rate_total = n / phase; // input elements per ns (steady state approx)
    let cross_traffic: f64 = (0..mappers)
        .map(|m| match plan.mapper_combiner_distance(m) {
            CommDistance::CrossSocket => job.profile.pair_bytes as f64,
            CommDistance::Unpinned => job.profile.pair_bytes as f64 * 0.5,
            _ => 0.0,
        })
        .sum::<f64>()
        / mappers as f64;
    let stream = streaming_bytes(&job.profile.map) + e * cross_traffic;
    let (bw_util, stretch) = bandwidth_stretch(machine, rate_total * stream);
    phase *= stretch;

    let tasks = (n / cfg.task_size as f64).ceil().max(1.0);
    phase += tasks * TASK_OVERHEAD_NS / mappers as f64;

    // Diagnostics: share of per-element cost that is pure queue machinery.
    let avg_push: f64 = (0..mappers)
        .map(|m| {
            push_ns(
                machine,
                plan.mapper_combiner_distance(m),
                job.profile.pair_bytes,
                job.profile.pair_serialize_instr,
            )
        })
        .sum::<f64>()
        / mappers as f64;
    let queue_ns = e * (avg_push + (avg_pair - combine.total_ns()).max(0.0));
    let work_ns = map.total_ns() + e * combine.total_ns();
    let queue_overhead_fraction = queue_ns / (queue_ns + work_ns);

    let total_threads = mappers + combiners;
    let (reduce_ns, merge_ns) = tail_phases(job, machine, total_threads, combiners);
    SimReport {
        partition_ns: tasks * PARTITION_NS_PER_TASK,
        map_combine_ns: phase,
        reduce_ns,
        merge_ns,
        queue_overhead_fraction,
        bandwidth_utilization: bw_util,
        mapper_utilization,
        mappers,
        combiners,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_apps::AppKind;
    use ramr_perfmodel::catalog;
    use ramr_topology::PinningPolicy;

    fn job(app: AppKind, stressed: bool) -> SimJob {
        let profile =
            if stressed { catalog::stressed_profile(app) } else { catalog::default_profile(app) };
        let (elements, keys) = match app {
            AppKind::WordCount => (2_000_000, 5_000),
            AppKind::Histogram => (60_000_000, 768),
            AppKind::LinearRegression => (50_000_000, 5),
            AppKind::Kmeans => (2_000_000, 64),
            AppKind::Pca => (500_000, 500_000),
            AppKind::MatrixMultiply => (32_000, 65_536),
        };
        SimJob { profile, input_elements: elements, unique_keys: keys }
    }

    fn speedup(app: AppKind, stressed: bool, machine: MachineModel) -> f64 {
        let j = job(app, stressed);
        let phoenix = simulate(&j, &SimConfig::phoenix(machine.clone()));
        let ramr = simulate(&j, &SimConfig::ramr(machine));
        phoenix.total_ns() / ramr.total_ns()
    }

    #[test]
    fn fig8a_heavy_apps_win_light_apps_lose_on_haswell() {
        let m = MachineModel::haswell_server;
        assert!(speedup(AppKind::Kmeans, false, m()) > 1.2, "KM must win (paper: 1.95x)");
        assert!(speedup(AppKind::MatrixMultiply, false, m()) > 1.2, "MM must win (paper: 1.77x)");
        let pca = speedup(AppKind::Pca, false, m());
        assert!((0.7..1.4).contains(&pca), "PCA roughly at par (paper: ~1x), got {pca}");
        let wc = speedup(AppKind::WordCount, false, m());
        assert!((0.6..1.0).contains(&wc), "WC slightly slower (paper: 0.82x), got {wc}");
        assert!(speedup(AppKind::Histogram, false, m()) < 0.6, "HG must lose (paper: ~1/3)");
        assert!(
            speedup(AppKind::LinearRegression, false, m()) < 0.6,
            "LR must lose (paper: ~1/3.8)"
        );
    }

    #[test]
    fn fig9a_wc_flips_to_a_win_on_the_phi() {
        // The paper's platform contrast: WC loses 21.6% on Haswell but wins
        // 1.59x on the Xeon Phi.
        let hwl = speedup(AppKind::WordCount, false, MachineModel::haswell_server());
        let phi = speedup(AppKind::WordCount, false, MachineModel::xeon_phi());
        assert!(hwl < 1.0 && phi > 1.0, "WC: hwl {hwl:.2}, phi {phi:.2}");
    }

    #[test]
    fn fig8b_hash_containers_improve_ramr_standing() {
        // With the stressed (hash) containers RAMR wins 5/6 on Haswell.
        let m = MachineModel::haswell_server;
        let mut wins = 0;
        for app in AppKind::ALL {
            if speedup(app, true, m()) > 1.0 {
                wins += 1;
            }
        }
        assert!(wins >= 4, "paper: 5 of 6 apps win with hash containers, got {wins}");
        // And each app's standing does not get worse.
        for app in AppKind::ALL {
            let default = speedup(app, false, m());
            let stressed = speedup(app, true, m());
            assert!(
                stressed > default * 0.8,
                "{app}: hash containers must not hurt RAMR's relative standing \
                 ({default:.2} -> {stressed:.2})"
            );
        }
    }

    #[test]
    fn fig9_phi_amplifies_the_pattern() {
        let phi = MachineModel::xeon_phi;
        assert!(speedup(AppKind::Kmeans, false, phi()) > 1.3, "KM wins big on PHI (paper: 2.8x)");
        assert!(speedup(AppKind::Histogram, false, phi()) < 0.7, "HG loses on PHI");
        // Stressed containers: higher average speedup than Haswell (2.6x vs 1.57x).
        let avg_phi: f64 = AppKind::ALL.iter().map(|&a| speedup(a, true, phi())).sum::<f64>() / 6.0;
        let avg_hwl: f64 = AppKind::ALL
            .iter()
            .map(|&a| speedup(a, true, MachineModel::haswell_server()))
            .sum::<f64>()
            / 6.0;
        assert!(avg_phi > avg_hwl, "PHI stressed avg {avg_phi:.2} must exceed HWL {avg_hwl:.2}");
    }

    #[test]
    fn fig5_pinning_policy_ordering() {
        // RAMR pinning beats round-robin beats nothing, on every app (HWL),
        // holding the mapper/combiner split fixed across policies as the
        // paper does.
        for app in AppKind::ALL {
            let j = job(app, false);
            let mut cfg = SimConfig::ramr(MachineModel::haswell_server());
            let (m, c) = auto_split(&j, &cfg);
            cfg.mappers = m;
            cfg.combiners = c;
            cfg.pinning = PinningPolicy::Ramr;
            let ramr = simulate(&j, &cfg).total_ns();
            cfg.pinning = PinningPolicy::RoundRobin;
            let rr = simulate(&j, &cfg).total_ns();
            cfg.pinning = PinningPolicy::OsDefault;
            let os = simulate(&j, &cfg).total_ns();
            assert!(ramr <= rr * 1.001, "{app}: RAMR pinning must not lose to RR");
            assert!(ramr <= os * 1.001, "{app}: RAMR pinning must not lose to the OS scheduler");
        }
    }

    #[test]
    fn fig5_light_apps_gain_most_from_pinning() {
        let gain = |app| {
            let j = job(app, false);
            let mut cfg = SimConfig::ramr(MachineModel::haswell_server());
            let (m, c) = auto_split(&j, &cfg);
            cfg.mappers = m;
            cfg.combiners = c;
            cfg.pinning = PinningPolicy::RoundRobin;
            let rr = simulate(&j, &cfg).total_ns();
            cfg.pinning = PinningPolicy::Ramr;
            let ramr = simulate(&j, &cfg).total_ns();
            rr / ramr
        };
        // HG and LR are queue-dominated, so placement matters most for them.
        let light = gain(AppKind::Histogram).max(gain(AppKind::LinearRegression));
        let heavy = gain(AppKind::Pca).max(gain(AppKind::Kmeans));
        assert!(light > heavy, "light apps must be the most pinning-sensitive");
    }

    #[test]
    fn fig5_phi_pinning_gains_are_small() {
        for app in AppKind::ALL {
            let j = job(app, false);
            let mut cfg = SimConfig::ramr(MachineModel::xeon_phi());
            let (m, c) = auto_split(&j, &cfg);
            cfg.mappers = m;
            cfg.combiners = c;
            cfg.pinning = PinningPolicy::RoundRobin;
            let rr = simulate(&j, &cfg).total_ns();
            cfg.pinning = PinningPolicy::Ramr;
            let ramr = simulate(&j, &cfg).total_ns();
            let gain = rr / ramr;
            assert!(gain >= 0.99, "{app}: RAMR still ahead on PHI, got {gain:.3}");
            assert!(gain < 1.3, "{app}: PHI pinning gains stay small (paper: 1-3%), got {gain:.3}");
        }
    }

    #[test]
    fn fig6_batching_wins_and_wins_more_on_phi() {
        let gain = |machine: MachineModel, app| {
            let j = job(app, false);
            let mut cfg = SimConfig::ramr(machine);
            cfg.batch_size = 1;
            let unbatched = simulate(&j, &cfg).total_ns();
            cfg.batch_size = 1000.min(cfg.queue_capacity);
            let batched = simulate(&j, &cfg).total_ns();
            unbatched / batched
        };
        for app in AppKind::ALL {
            assert!(gain(MachineModel::haswell_server(), app) >= 1.0, "{app}: batching must help");
        }
        // The paper's largest gains: 3.1x on HWL, 11.4x on PHI — light apps.
        let hwl = gain(MachineModel::haswell_server(), AppKind::Histogram);
        let phi = gain(MachineModel::xeon_phi(), AppKind::Histogram);
        assert!(hwl > 1.5, "HG batching gain on HWL, got {hwl:.2}");
        assert!(
            phi > hwl * 0.95,
            "PHI batching gain must be at least comparable to HWL ({phi:.2} vs {hwl:.2});              the paper reports 11.4x vs 3.1x maxima"
        );
    }

    #[test]
    fn fig7_batch_size_curves_are_u_shaped_with_smaller_phi_optimum() {
        let times = |machine: MachineModel, app| {
            let j = job(app, false);
            [1usize, 5, 20, 100, 500, 1000, 2000, 5000].map(|batch| {
                let mut cfg = SimConfig::ramr(machine.clone());
                cfg.batch_size = batch;
                cfg.queue_capacity = 5000;
                simulate(&j, &cfg).total_ns()
            })
        };
        // Paper (HWL): "all applications profit from a 1000 elements batch
        // size" — time at 1000 sits within a few percent of the curve's
        // minimum, and element-wise consumption (batch 1) is clearly worse.
        for app in AppKind::ALL {
            let t = times(MachineModel::haswell_server(), app);
            let best = t.iter().cloned().fold(f64::INFINITY, f64::min);
            let at_1000 = t[5];
            assert!(at_1000 <= best * 1.10, "{app}: batch 1000 must be near-optimal on HWL");
            assert!(t[0] > best, "{app}: batch 1 must be suboptimal");
        }
        // Paper (PHI): the optima sit at smaller batches (20-500); a
        // 500-element batch is near-optimal and the curve rises by 5000.
        for app in AppKind::ALL {
            let t = times(MachineModel::xeon_phi(), app);
            let best = t.iter().cloned().fold(f64::INFINITY, f64::min);
            let at_500 = t[4];
            assert!(at_500 <= best * 1.10, "{app}: batch 500 must be near-optimal on PHI");
            assert!(t[7] >= at_500, "{app}: batch 5000 must not beat 500 on PHI");
        }
    }

    #[test]
    fn fig1_map_combine_dominates_runtime() {
        // Paper Fig 1: 82.4% average across the suite (Phoenix-style run).
        let mut total_fraction = 0.0;
        for app in AppKind::ALL {
            let j = job(app, false);
            let r = simulate(&j, &SimConfig::phoenix(MachineModel::haswell_server()));
            total_fraction += r.map_combine_fraction();
        }
        let avg = total_fraction / 6.0;
        assert!(avg > 0.7, "map-combine must dominate (paper: 82.4%), got {avg:.2}");
    }

    #[test]
    fn sleep_on_failed_push_beats_busy_wait_when_combiners_bottleneck() {
        // Force a combiner bottleneck: one combiner for many mappers on a
        // combine-heavy profile.
        let j = job(AppKind::WordCount, true);
        let mut cfg = SimConfig::ramr(MachineModel::haswell_server());
        cfg.mappers = 54;
        cfg.combiners = 2;
        cfg.busy_wait_push = false;
        let sleeping = simulate(&j, &cfg).total_ns();
        cfg.busy_wait_push = true;
        let spinning = simulate(&j, &cfg).total_ns();
        assert!(spinning > sleeping, "busy-wait must hurt under combiner bottleneck");
    }

    #[test]
    fn auto_split_tracks_combine_intensity() {
        let cfg = SimConfig::ramr(MachineModel::haswell_server());
        let light = job(AppKind::Kmeans, false); // tiny combine per map work
        let heavy = job(AppKind::WordCount, true); // hash combine, 10 emits
        let (_, c_light) = auto_split(&light, &cfg);
        let (_, c_heavy) = auto_split(&heavy, &cfg);
        assert!(
            c_heavy > c_light,
            "combine-heavy workloads need more combiners ({c_heavy} vs {c_light})"
        );
    }

    #[test]
    fn queue_overhead_fraction_flags_light_apps() {
        let m = MachineModel::haswell_server();
        let light = simulate(&job(AppKind::LinearRegression, false), &SimConfig::ramr(m.clone()));
        let heavy = simulate(&job(AppKind::Pca, false), &SimConfig::ramr(m));
        assert!(light.queue_overhead_fraction > heavy.queue_overhead_fraction * 3.0);
    }

    #[test]
    fn reports_are_deterministic() {
        let j = job(AppKind::Kmeans, false);
        let cfg = SimConfig::ramr(MachineModel::haswell_server());
        assert_eq!(simulate(&j, &cfg), simulate(&j, &cfg));
    }

    #[test]
    fn more_input_means_more_time() {
        let mut j = job(AppKind::Histogram, false);
        let cfg = SimConfig::ramr(MachineModel::haswell_server());
        let small = simulate(&j, &cfg).total_ns();
        j.input_elements *= 4;
        let large = simulate(&j, &cfg).total_ns();
        assert!(large > small * 2.0);
    }
}
