//! Configuration-matrix tests: RAMR must produce identical results across
//! the full tuning surface (pool sizes, ratio, batch, queue capacity, task
//! size, container kind, pinning policy, backoff).

use mr_apps::inputs::{wc_input, InputFlavor, InputSpec, Platform};
use mr_apps::{AppKind, WordCount};
use mr_core::{ContainerKind, PinningPolicyKind, PushBackoff, RuntimeConfig};
use ramr::{Backend, Engine};

fn input() -> Vec<String> {
    let spec = InputSpec::table1(AppKind::WordCount, Platform::XeonPhi, InputFlavor::Small);
    wc_input(&spec, 40_000)
}

fn reference(lines: &[String]) -> Vec<(ramr_containers::CompactKey, u64)> {
    let mut counts = std::collections::BTreeMap::new();
    for line in lines {
        for w in line.split_ascii_whitespace() {
            *counts.entry(ramr_containers::CompactKey::ascii_lowercase(w)).or_insert(0u64) += 1;
        }
    }
    counts.into_iter().collect()
}

#[test]
fn pool_size_and_ratio_matrix() {
    let lines = input();
    let expected = reference(&lines);
    for (workers, combiners) in [(1, 1), (2, 1), (2, 2), (4, 1), (4, 2), (4, 4), (6, 3), (8, 2)] {
        let cfg = RuntimeConfig::builder()
            .num_workers(workers)
            .num_combiners(combiners)
            .task_size(50)
            .queue_capacity(128)
            .batch_size(16)
            .container(ContainerKind::Hash)
            .build()
            .unwrap();
        let out =
            Backend::RamrStatic.engine(cfg).unwrap().submit(&WordCount, &lines).unwrap().output;
        assert_eq!(out.pairs, expected, "workers={workers} combiners={combiners}");
    }
}

#[test]
fn batch_and_queue_capacity_matrix() {
    let lines = input();
    let expected = reference(&lines);
    for (capacity, batch) in [(1, 1), (2, 1), (8, 8), (64, 5), (128, 128), (5000, 1000)] {
        let cfg = RuntimeConfig::builder()
            .num_workers(3)
            .num_combiners(2)
            .task_size(64)
            .queue_capacity(capacity)
            .batch_size(batch)
            .container(ContainerKind::Hash)
            .build()
            .unwrap();
        let out =
            Backend::RamrStatic.engine(cfg).unwrap().submit(&WordCount, &lines).unwrap().output;
        assert_eq!(out.pairs, expected, "capacity={capacity} batch={batch}");
    }
}

#[test]
fn task_size_matrix() {
    let lines = input();
    let expected = reference(&lines);
    for task_size in [1usize, 7, 100, 10_000, usize::MAX / 2] {
        let cfg = RuntimeConfig::builder()
            .num_workers(4)
            .num_combiners(2)
            .task_size(task_size)
            .queue_capacity(64)
            .batch_size(8)
            .container(ContainerKind::Hash)
            .build()
            .unwrap();
        let out =
            Backend::RamrStatic.engine(cfg).unwrap().submit(&WordCount, &lines).unwrap().output;
        assert_eq!(out.pairs, expected, "task_size={task_size}");
    }
}

#[test]
fn emit_buffer_matrix() {
    let lines = input();
    let expected = reference(&lines);
    // (queue_capacity, batch_size, emit_buffer) including the degenerate
    // block == capacity case, a block larger than batch, and element-wise.
    for (capacity, batch, emit) in
        [(128, 16, 1), (128, 16, 2), (128, 16, 16), (128, 16, 128), (4, 4, 4), (64, 5, 48)]
    {
        let cfg = RuntimeConfig::builder()
            .num_workers(3)
            .num_combiners(2)
            .task_size(64)
            .queue_capacity(capacity)
            .batch_size(batch)
            .emit_buffer_size(emit)
            .container(ContainerKind::Hash)
            .build()
            .unwrap();
        let out =
            Backend::RamrStatic.engine(cfg).unwrap().submit(&WordCount, &lines).unwrap().output;
        assert_eq!(out.pairs, expected, "capacity={capacity} batch={batch} emit={emit}");
    }
}

#[test]
fn pinning_policies_do_not_change_results() {
    let lines = input();
    let expected = reference(&lines);
    for pinning in PinningPolicyKind::ALL {
        // Note: pin_os_threads stays false (the default) so this runs
        // identically on any CI machine; the plan is still computed.
        let cfg = RuntimeConfig::builder()
            .num_workers(4)
            .num_combiners(2)
            .task_size(64)
            .queue_capacity(128)
            .batch_size(16)
            .container(ContainerKind::Hash)
            .pinning(pinning)
            .build()
            .unwrap();
        let out =
            Backend::RamrStatic.engine(cfg).unwrap().submit(&WordCount, &lines).unwrap().output;
        assert_eq!(out.pairs, expected, "pinning={pinning}");
    }
}

#[test]
fn real_os_pinning_is_best_effort_and_correct() {
    // With pin_os_threads enabled the runtime must still work on machines
    // with fewer CPUs than the plan assumes (pinning failures are ignored).
    let lines = input();
    let expected = reference(&lines);
    let cfg = RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(64)
        .queue_capacity(128)
        .batch_size(16)
        .container(ContainerKind::Hash)
        .pin_os_threads(true)
        .build()
        .unwrap();
    let out = Backend::RamrStatic.engine(cfg).unwrap().submit(&WordCount, &lines).unwrap().output;
    assert_eq!(out.pairs, expected);
}

#[test]
fn backoff_policies_do_not_change_results() {
    let lines = input();
    let expected = reference(&lines);
    for backoff in [
        PushBackoff::BusyWait,
        PushBackoff::SpinThenSleep { spins: 0, sleep: std::time::Duration::from_micros(1) },
        PushBackoff::default_sleep(),
    ] {
        let cfg = RuntimeConfig::builder()
            .num_workers(4)
            .num_combiners(1)
            .task_size(64)
            .queue_capacity(4)
            .batch_size(4)
            .container(ContainerKind::Hash)
            .push_backoff(backoff)
            .build()
            .unwrap();
        let out =
            Backend::RamrStatic.engine(cfg).unwrap().submit(&WordCount, &lines).unwrap().output;
        assert_eq!(out.pairs, expected, "backoff={backoff:?}");
    }
}

#[test]
fn env_var_tuning_reaches_the_runtime() {
    // The paper tunes via environment variables; the config surface must
    // honour them end to end.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("RAMR_WORKERS", "3");
    std::env::set_var("RAMR_COMBINERS", "2");
    std::env::set_var("RAMR_BATCH_SIZE", "25");
    std::env::set_var("RAMR_CONTAINER", "hash");
    let cfg = RuntimeConfig::from_env().unwrap();
    std::env::remove_var("RAMR_WORKERS");
    std::env::remove_var("RAMR_COMBINERS");
    std::env::remove_var("RAMR_BATCH_SIZE");
    std::env::remove_var("RAMR_CONTAINER");
    assert_eq!((cfg.num_workers, cfg.num_combiners, cfg.batch_size), (3, 2, 25));
    let lines = input();
    let out = Backend::RamrStatic.engine(cfg).unwrap().submit(&WordCount, &lines).unwrap().output;
    assert_eq!(out.pairs, reference(&lines));
}
