//! Fuzz and adversarial-stream tests for the wire protocol's frame
//! reader: arbitrary byte soup must never panic, oversized length
//! prefixes must be rejected *before* any buffer is sized from them,
//! and frames trickling in byte-at-a-time — with read timeouts between
//! every byte — must still parse, because the reader's mid-frame
//! patience exists precisely so slow writers do not desync the stream.

use std::io::{self, BufReader, Read};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use ramr_serve::proto::{self, read_frame_with_patience, MID_FRAME_PATIENCE};
use ramr_telemetry::json::Value;

const MAX_FRAME: usize = 4096;

/// Serves its bytes one at a time, returning a `TimedOut` error before
/// every byte — the pathological slow writer: the stream always
/// progresses, but never faster than the socket read timeout.
struct Trickle<'a> {
    data: &'a [u8],
    pos: usize,
    ready: bool,
    timeouts: u64,
}

impl<'a> Trickle<'a> {
    fn new(data: &'a [u8]) -> Self {
        Trickle { data, pos: 0, ready: false, timeouts: 0 }
    }
}

impl Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        if !self.ready {
            self.ready = true;
            self.timeouts += 1;
            return Err(io::ErrorKind::TimedOut.into());
        }
        self.ready = false;
        buf[0] = self.data[self.pos];
        self.pos += 1;
        Ok(1)
    }
}

/// Emits a fixed prefix, then times out forever: a peer that died
/// mid-frame while its kernel buffers drained.
struct Stall {
    served: &'static [u8],
    pos: usize,
}

impl Read for Stall {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos < self.served.len() {
            buf[0] = self.served[self.pos];
            self.pos += 1;
            return Ok(1);
        }
        Err(io::ErrorKind::TimedOut.into())
    }
}

fn obj(pairs: &[(&str, Value)]) -> Value {
    Value::Obj(pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Arbitrary byte soup: any outcome is fine except a panic or a
    /// bottomless allocation. (The length-prefix bound is what keeps a
    /// hostile `99999999999 ...` prefix from sizing a buffer.)
    #[test]
    fn byte_soup_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut reader = BufReader::new(&data[..]);
        let _ = proto::read_frame(&mut reader, MAX_FRAME);
    }

    /// Valid frames survive the fuzzer's choice of payload strings and
    /// round-trip bit-identically even when trickled byte-at-a-time
    /// with a timeout before every single byte.
    #[test]
    fn random_frames_round_trip_through_a_trickled_stream(
        raw_key in proptest::collection::vec(any::<u8>(), 1..12),
        raw_val in proptest::collection::vec(any::<u8>(), 0..48),
        n in any::<u32>(),
    ) {
        // Sanitize into ASCII so the fuzz explores shapes, not UTF-8.
        let key: String = raw_key.iter().map(|b| char::from(b'a' + b % 26)).collect();
        let val: String = raw_val.iter().map(|b| char::from(b' ' + b % 94)).collect();
        let frame = obj(&[
            (key.as_str(), Value::Str(val)),
            ("n", Value::Num(f64::from(n))),
        ]);
        let mut wire = Vec::new();
        proto::write_frame(&mut wire, &frame, MAX_FRAME).unwrap();

        let mut trickle = BufReader::new(Trickle::new(&wire));
        let got = loop {
            match proto::read_frame(&mut trickle, MAX_FRAME) {
                Ok(got) => break got,
                // Only idle (between-frame) timeouts surface; mid-frame
                // ones are absorbed by the reader's patience.
                Err(e) if e.kind() == io::ErrorKind::TimedOut => continue,
                Err(e) => panic!("trickled frame failed to parse: {e}"),
            }
        };
        prop_assert_eq!(got, Some(frame));
    }

    /// Hostile length prefixes — any digit string parsing over the
    /// frame bound — are rejected with `InvalidData` without buffering.
    #[test]
    fn oversized_length_prefixes_are_rejected(excess in 1u32..1_000_000) {
        let length = MAX_FRAME as u64 + u64::from(excess);
        let wire = format!("{length} {}", "x".repeat(8));
        let err = proto::read_frame(&mut BufReader::new(wire.as_bytes()), MAX_FRAME)
            .expect_err("oversized prefix must be refused");
        prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}

/// The regression the chaos proxy's split mode guards: a whole valid
/// frame arriving strictly slower than the socket read timeout (one
/// timeout per byte) parses exactly once, and the reader really did
/// absorb a mid-frame timeout for every payload byte rather than
/// bailing on the first.
#[test]
fn frame_trickled_slower_than_the_read_timeout_still_parses() {
    let frame = obj(&[("tenant", Value::Str("slow".into())), ("version", Value::Num(1.0))]);
    let mut wire = Vec::new();
    proto::write_frame(&mut wire, &frame, MAX_FRAME).unwrap();

    let mut inner = Trickle::new(&wire);
    let mut idle_timeouts = 0u64;
    let got = loop {
        // BufReader would batch the trickle; read the raw stream to
        // guarantee the one-timeout-per-byte cadence reaches the parser.
        match read_frame_with_patience(&mut BufReaderRaw(&mut inner), MAX_FRAME, MID_FRAME_PATIENCE)
        {
            Ok(got) => break got,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => idle_timeouts += 1,
            Err(e) => panic!("trickled frame failed: {e}"),
        }
    };
    assert_eq!(got, Some(frame));
    assert!(
        inner.timeouts >= wire.len() as u64,
        "expected a timeout before each of the {} bytes, saw {}",
        wire.len(),
        inner.timeouts
    );
    // Only the frame-boundary timeout may surface to the caller; every
    // mid-frame one must be retried internally.
    assert!(idle_timeouts <= 2, "{idle_timeouts} timeouts leaked through mid-frame");
}

/// A peer that stalls mid-frame *forever* trips the patience deadline
/// (shrunk from the production ten seconds so the test is fast) with a
/// typed `TimedOut`, not a hang.
#[test]
fn stalled_mid_frame_peer_trips_the_patience_deadline() {
    let started = Instant::now();
    let mut stall = BufReaderRaw(&mut Stall { served: b"37 {\"half\":", pos: 0 });
    let err = read_frame_with_patience(&mut stall, MAX_FRAME, Duration::from_millis(50))
        .expect_err("a stalled peer must time out");
    assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    assert!(err.to_string().contains("stalled"), "error should name the stall: {err}");
    let elapsed = started.elapsed();
    assert!(elapsed >= Duration::from_millis(45), "deadline fired early: {elapsed:?}");
    assert!(elapsed < Duration::from_secs(5), "deadline fired far too late: {elapsed:?}");
}

/// Between frames, the very first timeout surfaces immediately — that
/// is the server's shutdown-poll point and the client's heartbeat tick;
/// patience applies only once a frame has started.
#[test]
fn idle_timeouts_between_frames_surface_immediately() {
    let started = Instant::now();
    let mut idle = BufReaderRaw(&mut Stall { served: b"", pos: 0 });
    let err = proto::read_frame(&mut idle, MAX_FRAME).expect_err("idle timeout must surface");
    assert!(matches!(err.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock));
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "an idle timeout must not consume the mid-frame patience budget"
    );
}

/// A minimal `BufRead` shim that forwards straight to the inner reader,
/// so tests control exactly which bytes and errors the parser sees
/// (a real `BufReader` would coalesce the trickle into one gulp).
struct BufReaderRaw<'a, R: Read>(&'a mut R);

impl<R: Read> Read for BufReaderRaw<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

impl<R: Read> io::BufRead for BufReaderRaw<'_, R> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        unreachable!("read_frame reads directly; it never fills")
    }

    fn consume(&mut self, _amt: usize) {
        unreachable!("read_frame reads directly; it never consumes")
    }
}
