//! End-to-end tests for the `ramr-serve` service layer: a real server on
//! a loopback socket, driven through the real client library.
//!
//! The headline test is the differential: a job submitted over the wire
//! must produce the exact bytes — and the same fault/report accounting —
//! as the same job run through an in-process [`JobScheduler`], on all
//! three backends. Around it: typed wire backpressure, tenant auth,
//! fault isolation for a poisoned tenant, graceful shutdown semantics,
//! and the live `METRICS` endpoint.

use std::sync::Arc;

use mr_apps::inputs::{wc_input, InputFlavor, InputSpec, Platform};
use mr_apps::{AppKind, WordCount};
use mr_core::RuntimeConfig;
use ramr::{Backend, JobScheduler};
use ramr_serve::{
    outcome_of, JobRequest, ServeClient, ServeConfig, ServeError, Server, POISON_APP,
};
use ramr_telemetry::json::Value;

/// Table I divisor used throughout: large enough that each job is around
/// a millisecond, so the suite stays fast.
const SCALE: u64 = 20_000;

fn base_config() -> RuntimeConfig {
    RuntimeConfig::builder()
        .num_workers(2)
        .num_combiners(1)
        .task_size(256)
        .queue_capacity(5000)
        .batch_size(500)
        .build()
        .expect("valid test config")
}

/// Boots a server on an ephemeral loopback port with the test base
/// config; returns the server and its dialable address.
fn boot(mutate: impl FnOnce(&mut ServeConfig)) -> (Server, String) {
    let mut config = ServeConfig { base: base_config(), ..ServeConfig::default() };
    config.addr = "127.0.0.1:0".into();
    config.max_pools = 8;
    mutate(&mut config);
    let server = Server::bind(config).expect("server binds loopback");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn wc_request() -> JobRequest {
    let mut request = JobRequest::new("wc");
    request.scale = SCALE;
    request
}

/// A word-count request against a private one-slot pool whose single job
/// runs long enough to hold the slot (scale 40x lower = 40x more input).
fn slow_one_slot_request() -> JobRequest {
    let mut request = wc_request();
    request.scale = SCALE / 40;
    request.knobs.push(("sched-queue".into(), "1".into()));
    request
}

/// In-process baseline: the same job the server runs for [`wc_request`]
/// on `backend`, scheduled through a [`JobScheduler`] and rendered by the
/// shared [`outcome_of`], so both sides of the differential go through
/// identical rendering and report construction.
fn in_process_outcome(backend: Backend) -> ramr_serve::JobOutcome {
    // Mirror the server's pool config: base + the app's default container.
    let config = base_config()
        .into_builder()
        .container(AppKind::WordCount.default_container())
        .build()
        .expect("baseline config");
    let spec = InputSpec::table1(AppKind::WordCount, Platform::Haswell, InputFlavor::Small);
    let input = Arc::new(wc_input(&spec, SCALE));
    let sched = JobScheduler::<WordCount>::new(backend, config.clone()).expect("baseline sched");
    let done = sched
        .client("baseline")
        .submit(Arc::new(WordCount), input)
        .expect("baseline submit")
        .wait()
        .expect("baseline job");
    outcome_of("wc", backend, &config, &done, true)
}

/// Pulls a named numeric field out of a metrics JSON tree.
fn metric_u64(metrics: &Value, field: &str) -> u64 {
    metrics.get(field).and_then(Value::as_u64).unwrap_or_else(|| panic!("metrics missing {field}"))
}

#[test]
fn socket_jobs_match_in_process_scheduler_on_every_backend() {
    let (server, addr) = boot(|_| {});
    let mut client = ServeClient::connect(&addr, "diff", None).expect("connect");
    for backend in Backend::ALL {
        let expected = in_process_outcome(backend);
        let mut request = wc_request();
        request.backend = Some(backend.as_str().to_string());
        request.echo_output = true;
        let got = client.run_job(&request).expect("socket job completes");

        // Byte-identical output: same digest, same full rendering.
        assert_eq!(got.keys, expected.keys, "{backend}: key count diverged");
        assert_eq!(got.digest, expected.digest, "{backend}: digest diverged");
        assert_eq!(
            got.output.as_deref(),
            expected.rendered.as_deref(),
            "{backend}: echoed output is not byte-identical to the in-process run"
        );

        // Equivalent report accounting: everything deterministic in the
        // `--metrics-json` report must agree (timings legitimately differ).
        for field in ["workers", "combiners", "batch_size", "emit_buffer", "queue_capacity"] {
            assert_eq!(
                metric_u64(&got.metrics, field),
                metric_u64(&expected.metrics, field),
                "{backend}: report field {field} diverged"
            );
        }
        assert_eq!(
            got.metrics.get("emitted"),
            expected.metrics.get("emitted"),
            "{backend}: emitted-pair accounting diverged"
        );
        assert_eq!(
            got.metrics.get("faults"),
            expected.metrics.get("faults"),
            "{backend}: fault accounting diverged"
        );
        assert_eq!(
            got.metrics.get("app").and_then(Value::as_str),
            Some("wc"),
            "{backend}: report names the wrong app"
        );
        assert_eq!(
            got.metrics.get("runtime").and_then(Value::as_str),
            Some(backend.as_str()),
            "{backend}: report names the wrong runtime"
        );
    }
    drop(client);
    drop(server);
}

#[test]
fn overflow_is_shed_with_typed_reason_and_retry_hint() {
    let (server, addr) = boot(|_| {});
    let mut client = ServeClient::connect(&addr, "burst", None).expect("connect");
    let request = slow_one_slot_request();
    let first = client.submit(&request).expect("first submit runs");
    let second = client.submit(&request).expect("second submit queues");
    match client.submit(&request) {
        Err(ServeError::Shed { reason, retry_after_ms }) => {
            assert_eq!(reason, "queue-full", "one-slot overflow must shed as queue-full");
            assert!(retry_after_ms > 0, "shed must carry a positive retry hint");
        }
        other => panic!("third submit into a full one-slot queue: {other:?}"),
    }
    // The shed submit is gone, not queued: exactly the two accepted jobs
    // come back, in dispatch order.
    for expected in [first, second] {
        let result = client.next_result().expect("accepted job completes");
        assert_eq!(result.id, expected);
    }
    // After the backlog drains, the same request is accepted again.
    let retried = client.run_job(&request).expect("retry after drain succeeds");
    assert!(retried.keys > 0);
    drop(server);
}

#[test]
fn tenants_authenticate_with_the_shared_token() {
    let (server, addr) = boot(|c| c.token = Some("sesame".into()));

    let refused = ServeClient::connect(&addr, "alice", None);
    assert!(
        matches!(refused, Err(ServeError::Remote(_))),
        "handshake without the token must be refused: {refused:?}"
    );
    let refused = ServeClient::connect(&addr, "alice", Some("wrong"));
    assert!(
        matches!(refused, Err(ServeError::Remote(_))),
        "handshake with a bad token must be refused: {refused:?}"
    );

    let mut client = ServeClient::connect(&addr, "alice", Some("sesame")).expect("good token");
    let result = client.run_job(&wc_request()).expect("authenticated job runs");
    assert!(result.keys > 0);

    // SHUTDOWN is token-gated too: a bad token gets an ERROR and the
    // server keeps serving; the right token drains and closes.
    let refused = client.shutdown(Some("wrong"));
    assert!(matches!(refused, Err(ServeError::Remote(_))), "bad shutdown token: {refused:?}");
    let mut second = ServeClient::connect(&addr, "bob", Some("sesame")).expect("still serving");
    second.shutdown(Some("sesame")).expect("authorized shutdown");
    server.wait();
}

#[test]
fn poisoned_tenant_fails_alone() {
    let (server, addr) = boot(|c| c.chaos = true);
    let mut evil = ServeClient::connect(&addr, "evil", None).expect("evil connects");
    let mut good = ServeClient::connect(&addr, "good", None).expect("good connects");

    let before = good.run_job(&wc_request()).expect("good job before the poison");

    let poisoned = evil.run_job(&JobRequest::new(POISON_APP));
    assert!(
        matches!(poisoned, Err(ServeError::JobFailed(_))),
        "poison job must fail with JOB_ERROR: {poisoned:?}"
    );

    // The failure is contained: the good tenant's pool keeps serving with
    // identical results, and even the evil connection stays usable.
    let after = good.run_job(&wc_request()).expect("good job after the poison");
    assert_eq!(after.digest, before.digest, "poison leaked into another tenant's pool");
    let recovered = evil.run_job(&wc_request()).expect("evil connection survives its own poison");
    assert_eq!(recovered.digest, before.digest);
    drop(server);
}

#[test]
fn poison_app_requires_chaos_mode() {
    let (server, addr) = boot(|_| {});
    let mut client = ServeClient::connect(&addr, "curious", None).expect("connect");
    let refused = client.run_job(&JobRequest::new(POISON_APP));
    assert!(
        matches!(refused, Err(ServeError::JobFailed(_))),
        "poison must be rejected without chaos mode: {refused:?}"
    );
    drop(server);
}

#[test]
fn graceful_shutdown_drains_in_flight_and_sheds_queued_with_shutdown_error() {
    let (server, addr) = boot(|_| {});
    let mut worker = ServeClient::connect(&addr, "worker", None).expect("connect");
    let request = slow_one_slot_request();
    // One job running, one queued behind it in the one-slot queue. The
    // nap gives the dispatcher time to dequeue the first job so the
    // common path exercises an actually-in-flight epoch.
    let running = worker.submit(&request).expect("first submit runs");
    std::thread::sleep(std::time::Duration::from_millis(50));
    let queued = worker.submit(&request).expect("second submit queues");

    let mut operator = ServeClient::connect(&addr, "operator", None).expect("operator connects");
    operator.shutdown(None).expect("shutdown acknowledged with BYE");

    // The shutdown contract: every ACCEPTED id resolves to exactly one
    // terminal frame — a real RESULT for a job the dispatcher ran (the
    // in-flight epoch drains), a shutdown JOB_ERROR for a still-queued
    // ticket. The two waiter threads race onto the socket, so the order
    // (and, under load, which jobs the dispatcher got to) is not fixed.
    let mut completed = Vec::new();
    let mut shutdown_errors = 0;
    for _ in 0..2 {
        match worker.next_result() {
            Ok(result) => {
                assert!(
                    result.id == running || result.id == queued,
                    "RESULT for an id never submitted: {}",
                    result.id
                );
                completed.push(result.id);
            }
            Err(ServeError::JobFailed(message)) => {
                assert!(
                    message.contains("shut"),
                    "queued ticket should carry a shutdown error, got {message:?}"
                );
                shutdown_errors += 1;
            }
            Err(other) => panic!("ticket resolved oddly: {other}"),
        }
    }
    completed.dedup();
    assert_eq!(
        completed.len() + shutdown_errors,
        2,
        "every accepted id must get exactly one terminal frame"
    );
    // FIFO over a one-slot queue: the second job can only have completed
    // if the first did too.
    if completed.contains(&queued) {
        assert!(completed.contains(&running), "queued job ran but the running one vanished");
    }

    server.wait();
    // The listener is gone: new connections are refused.
    assert!(
        ServeClient::connect(&addr, "late", None).is_err(),
        "connections must be refused after shutdown"
    );
}

#[test]
fn metrics_endpoint_reports_pools_and_shed_breakdown() {
    let (server, addr) = boot(|_| {});
    let mut client = ServeClient::connect(&addr, "meter", None).expect("connect");
    client.run_job(&wc_request()).expect("job completes");

    let metrics = client.metrics().expect("metrics snapshot");
    assert_eq!(metrics.get("shutting_down"), Some(&Value::Bool(false)));
    let pools = match metrics.get("pools") {
        Some(Value::Arr(pools)) => pools,
        other => panic!("METRICS_REPORT missing pools array: {other:?}"),
    };
    let wc_pool = pools
        .iter()
        .find(|p| p.get("app").and_then(Value::as_str) == Some("wc"))
        .expect("wc pool is listed");
    assert!(metric_u64(wc_pool, "queue_capacity") > 0);
    let tenants = match wc_pool.get("tenants") {
        Some(Value::Arr(tenants)) => tenants,
        other => panic!("pool missing tenants array: {other:?}"),
    };
    let meter = tenants
        .iter()
        .find(|t| t.get("tenant").and_then(Value::as_str) == Some("meter"))
        .expect("tenant accounting is listed");
    assert_eq!(metric_u64(meter, "submitted"), 1);
    assert_eq!(metric_u64(meter, "completed"), 1);
    // The typed shed breakdown rides the same report.
    for field in ["shed", "shed_queue_full", "shed_rate_limited", "shed_quota", "shed_saturated"] {
        assert_eq!(metric_u64(meter, field), 0, "{field} should be zero for a clean run");
    }
    // The resilience ledger rides as a top-level tenants section: dedup,
    // parking, reconnect, and rate-limit accounting per tenant.
    let ledgers = match metrics.get("tenants") {
        Some(Value::Arr(ledgers)) => ledgers,
        other => panic!("METRICS_REPORT missing top-level tenants array: {other:?}"),
    };
    let meter_ledger = ledgers
        .iter()
        .find(|t| t.get("tenant").and_then(Value::as_str) == Some("meter"))
        .expect("tenant ledger is listed");
    for field in ["reconnects", "dedup_hits", "parked", "expired", "rate_limited"] {
        assert_eq!(metric_u64(meter_ledger, field), 0, "{field} should be zero for a clean run");
    }
    // The clean run's one request_id is retained for replay until the
    // park TTL sweeps it.
    assert_eq!(metric_u64(meter_ledger, "ledger_in_flight"), 0);
    assert_eq!(metric_u64(meter_ledger, "ledger_entries"), 1);
    drop(server);
}

#[test]
fn per_job_knob_overrides_reach_the_pool() {
    let (server, addr) = boot(|_| {});
    let mut client = ServeClient::connect(&addr, "tuner", None).expect("connect");
    let mut request = wc_request();
    request.knobs.push(("workers".into(), "3".into()));
    request.knobs.push(("batch".into(), "250".into()));
    let result = client.run_job(&request).expect("tuned job completes");
    assert_eq!(metric_u64(&result.metrics, "workers"), 3, "workers override ignored");
    assert_eq!(metric_u64(&result.metrics, "batch_size"), 250, "batch override ignored");

    // An unknown knob is a job error, not a dead connection.
    let mut bad = wc_request();
    bad.knobs.push(("no-such-knob".into(), "1".into()));
    let refused = client.run_job(&bad);
    assert!(matches!(refused, Err(ServeError::JobFailed(_))), "unknown knob: {refused:?}");
    let still_fine = client.run_job(&wc_request()).expect("connection survives the refusal");
    assert!(still_fine.keys > 0);
    drop(server);
}
