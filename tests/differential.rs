//! Differential tests: every paper application must produce the same output
//! on the Phoenix++-style baseline and the decoupled RAMR runtime.
//!
//! Integer-valued jobs (WC, HG, LR, MM) are compared exactly; float-valued
//! jobs (KM, PCA) within a relative tolerance, since the two runtimes fold
//! combine operations in different orders.

use std::sync::Arc;

use mr_apps::inputs::{
    hg_input, km_input, lr_input, mm_matrices, pca_matrix, wc_input, InputFlavor, InputSpec,
    Platform,
};
use mr_apps::{
    AppKind, Histogram, KmeansState, LinearRegression, MatrixMultiply, PcaCovJob, PcaMeanJob,
    WordCount,
};
use mr_core::{JobOutput, MapReduceJob, MrKey, RuntimeConfig};
use ramr::{Backend, Engine};

const SCALE: u64 = 20_000;

fn config(app: AppKind) -> RuntimeConfig {
    RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(97)
        .queue_capacity(256)
        .batch_size(32)
        .container(app.default_container())
        .build()
        .expect("valid test config")
}

fn spec(app: AppKind) -> InputSpec {
    InputSpec::table1(app, Platform::Haswell, InputFlavor::Small)
}

type BothOutputs<J> = (
    JobOutput<<J as MapReduceJob>::Key, <J as MapReduceJob>::Value>,
    JobOutput<<J as MapReduceJob>::Key, <J as MapReduceJob>::Value>,
);

fn run_both<J: MapReduceJob>(job: &J, input: &[J::Input], config: RuntimeConfig) -> BothOutputs<J> {
    let ramr =
        Backend::RamrStatic.engine(config.clone()).unwrap().submit(job, input).unwrap().output;
    let phoenix = Backend::Phoenix.engine(config).unwrap().submit(job, input).unwrap().output;
    (ramr, phoenix)
}

fn assert_float_close<K: MrKey>(a: &[(K, f64)], b: &[(K, f64)]) {
    assert_eq!(a.len(), b.len(), "key sets differ");
    for ((ka, va), (kb, vb)) in a.iter().zip(b) {
        assert_eq!(ka, kb);
        let scale = va.abs().max(vb.abs()).max(1.0);
        assert!((va - vb).abs() / scale < 1e-9, "{ka:?}: {va} vs {vb}");
    }
}

#[test]
fn word_count_agrees() {
    let input = wc_input(&spec(AppKind::WordCount), SCALE);
    let (ramr, phoenix) = run_both(&WordCount, &input, config(AppKind::WordCount));
    assert_eq!(ramr.pairs, phoenix.pairs);
    assert!(!ramr.is_empty());
}

#[test]
fn histogram_agrees_and_conserves_pixels() {
    let input = hg_input(&spec(AppKind::Histogram), SCALE);
    let (ramr, phoenix) = run_both(&Histogram, &input, config(AppKind::Histogram));
    assert_eq!(ramr.pairs, phoenix.pairs);
    // Conservation: each channel's bins sum to the pixel count.
    let red: u64 = ramr.iter().filter(|(k, _)| *k < 256).map(|(_, v)| v).sum();
    assert_eq!(red, input.len() as u64);
}

#[test]
fn linear_regression_agrees_exactly() {
    let input = lr_input(&spec(AppKind::LinearRegression), SCALE);
    let (ramr, phoenix) = run_both(&LinearRegression, &input, config(AppKind::LinearRegression));
    assert_eq!(ramr.pairs, phoenix.pairs);
    assert_eq!(ramr.len(), 5, "exactly the five LR statistics");
}

#[test]
fn kmeans_iteration_agrees_within_tolerance() {
    let input = km_input(&spec(AppKind::Kmeans), SCALE);
    let state = KmeansState::seeded(&input, 8);
    let job = state.job();
    let (ramr, phoenix) = run_both(&job, &input, config(AppKind::Kmeans));
    assert_eq!(ramr.len(), phoenix.len());
    for ((ka, va), (kb, vb)) in ramr.iter().zip(phoenix.iter()) {
        assert_eq!(ka, kb);
        assert_eq!(va.count, vb.count, "cluster {ka} population differs");
        for d in 0..mr_apps::DIM {
            let scale = va.sum[d].abs().max(1.0);
            assert!((va.sum[d] - vb.sum[d]).abs() / scale < 1e-9);
        }
    }
}

#[test]
fn matrix_multiply_agrees_and_matches_reference() {
    let (a, b) = mm_matrices(&spec(AppKind::MatrixMultiply), 2_000_000);
    let (a, b) = (Arc::new(a), Arc::new(b));
    let job = MatrixMultiply::new(Arc::clone(&a), Arc::clone(&b), 8);
    let tasks = job.tasks();
    let (ramr, phoenix) = run_both(&job, &tasks, config(AppKind::MatrixMultiply));
    assert_eq!(ramr.pairs, phoenix.pairs);
    // Cross-check against the sequential reference product.
    let reference = a.multiply_reference(&b);
    let n = job.n();
    for (key, value) in ramr.iter() {
        let (i, j) = ((*key as usize) / n, (*key as usize) % n);
        assert_eq!(*value, reference.at(i, j), "C[{i}][{j}]");
    }
}

#[test]
fn pca_two_stage_agrees_within_tolerance() {
    let matrix = Arc::new(pca_matrix(&spec(AppKind::Pca), 200_000));
    let mean_job = PcaMeanJob::new(Arc::clone(&matrix));
    let tasks = mean_job.tasks();
    let (ramr_means, phoenix_means) = run_both(&mean_job, &tasks, config(AppKind::Pca));
    assert_eq!(ramr_means.pairs, phoenix_means.pairs, "means are exact integer sums");

    let means = Arc::new(mean_job.means(&ramr_means.pairs));
    let cov_job = PcaCovJob::new(Arc::clone(&matrix), means);
    let tasks = cov_job.tasks();
    let (ramr_cov, phoenix_cov) = run_both(&cov_job, &tasks, config(AppKind::Pca));
    assert_float_close(&ramr_cov.pairs, &phoenix_cov.pairs);
    // Diagonal entries are variances: non-negative.
    let n = matrix.n();
    for (key, value) in ramr_cov.iter() {
        let (i, j) = cov_job.unflatten(*key);
        if i == j {
            assert!(*value >= -1e-9, "variance of row {i} must be non-negative");
        }
        assert!(j >= i, "only the upper triangle is emitted");
        let _ = n;
    }
}

#[test]
fn emit_buffer_sweep_agrees_with_baseline_and_element_wise() {
    // Producer-side emission batching must be invisible in the output:
    // every block size — element-wise (1), tiny (2), the default
    // (= batch_size), and a whole queue's worth — matches both the Phoenix
    // baseline and the element-wise RAMR run.
    let input = wc_input(&spec(AppKind::WordCount), SCALE);
    let base = config(AppKind::WordCount);
    let mut element_wise_cfg = base.clone();
    element_wise_cfg.emit_buffer_size = Some(1);
    let element_wise = Backend::RamrStatic
        .engine(element_wise_cfg)
        .unwrap()
        .submit(&WordCount, &input)
        .unwrap()
        .output;
    for emit in [1, 2, base.batch_size, base.queue_capacity] {
        let mut cfg = base.clone();
        cfg.emit_buffer_size = Some(emit);
        let (ramr, phoenix) = run_both(&WordCount, &input, cfg);
        assert_eq!(ramr.pairs, phoenix.pairs, "emit_buffer_size={emit} vs phoenix");
        assert_eq!(ramr.pairs, element_wise.pairs, "emit_buffer_size={emit} vs element-wise");
    }
}

#[test]
fn pooled_sessions_match_fresh_runs_on_every_backend() {
    // The acceptance bar for persistent sessions: a stream of submits
    // through one pooled session produces results identical to fresh
    // per-job engines — same output pairs, same conservation counts, same
    // (clean) fault metrics — for all three backends, on every job of the
    // stream. Raw telemetry timings are scheduler-dependent and excluded.
    let input = wc_input(&spec(AppKind::WordCount), SCALE);
    for backend in Backend::ALL {
        let cfg = config(AppKind::WordCount);
        let mut session = backend.session::<WordCount>(cfg.clone()).unwrap();
        for round in 0..4 {
            let fresh_engine = backend.engine(cfg.clone()).unwrap();
            let (fresh, fresh_report) =
                fresh_engine.submit(&WordCount, &input).unwrap().into_parts();
            let (pooled, pooled_report) = session.submit(&WordCount, &input).unwrap().into_parts();
            assert_eq!(pooled.pairs, fresh.pairs, "{backend} round {round}: output differs");
            assert_eq!(
                pooled.stats.emitted, fresh.stats.emitted,
                "{backend} round {round}: emission counts differ"
            );
            assert_eq!(
                pooled_report.consumed, fresh_report.consumed,
                "{backend} round {round}: consumption differs"
            );
            assert_eq!(
                pooled_report.faults, fresh_report.faults,
                "{backend} round {round}: fault metrics differ"
            );
            assert_eq!(pooled_report.backend, backend);
        }
    }
}

#[test]
fn pooled_sessions_match_fresh_runs_under_faults() {
    // Same identity under active fault tolerance: a poison task is skipped,
    // and the recorded fault metrics (retries, skipped task identity) are
    // identical between the pooled session and a fresh engine, backend by
    // backend — the "including reports/faults" half of the acceptance bar.
    use ramr_faultinject::{FaultKind, FaultPlan, FaultyJob};
    let task = 32usize;
    let input: Vec<String> =
        (0..400).map(|i| format!("t{i} alpha beta w{} v{}", i % 7, i % 13)).collect();
    #[allow(clippy::ptr_arg)]
    fn ordinal_of(line: &String) -> u64 {
        let token = line.split_ascii_whitespace().next().expect("nonempty line");
        token[1..].parse::<u64>().expect("t<index> token") / 32
    }
    let cfg = RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(task)
        .queue_capacity(256)
        .batch_size(16)
        .container(mr_core::ContainerKind::Hash)
        .max_task_retries(1)
        .skip_poison_tasks(true)
        .build()
        .unwrap();
    let plan =
        || FaultPlan::with_faults(vec![FaultKind::PanicOnTask { key: 3, fail_attempts: u32::MAX }]);
    for backend in Backend::ALL {
        let mut session = backend.session::<FaultyJob<mr_apps::WordCount>>(cfg.clone()).unwrap();
        for round in 0..2 {
            let fresh_job = FaultyJob::new(mr_apps::WordCount, plan(), ordinal_of);
            let (fresh, fresh_report) = backend
                .engine(cfg.clone())
                .unwrap()
                .submit(&fresh_job, &input)
                .unwrap()
                .into_parts();
            let pooled_job = FaultyJob::new(mr_apps::WordCount, plan(), ordinal_of);
            let (pooled, pooled_report) = session.submit(&pooled_job, &input).unwrap().into_parts();
            assert_eq!(pooled.pairs, fresh.pairs, "{backend} round {round}");
            assert_eq!(
                pooled_report.faults, fresh_report.faults,
                "{backend} round {round}: fault records differ"
            );
            assert_eq!(pooled_report.faults.skipped.len(), 1, "{backend} round {round}");
        }
    }
}

#[test]
fn hashers_and_backends_all_produce_identical_output() {
    // The RAMR_HASHER knob must be invisible in the output: the final pairs
    // are key-sorted with one pair per key, so which hasher bucketed them
    // (and on which backend) cannot show. Pin byte-identical output across
    // the full hasher x backend matrix against one reference run.
    let input = wc_input(&spec(AppKind::WordCount), SCALE);
    let reference = Backend::RamrStatic
        .engine(config(AppKind::WordCount))
        .unwrap()
        .submit(&WordCount, &input)
        .unwrap()
        .output;
    assert!(!reference.is_empty());
    for hasher in mr_core::HasherKind::ALL {
        for backend in Backend::ALL {
            let mut cfg = config(AppKind::WordCount);
            cfg.hasher = hasher;
            let out = backend.engine(cfg).unwrap().submit(&WordCount, &input).unwrap().output;
            assert_eq!(
                out.pairs, reference.pairs,
                "{backend} with {hasher} diverges from the reference output"
            );
        }
    }
}

#[test]
fn stressed_containers_agree_too() {
    // Figs 8b/9b configuration: fixed-size hash / hash containers.
    let input = hg_input(&spec(AppKind::Histogram), SCALE);
    let mut cfg = config(AppKind::Histogram);
    cfg.container = AppKind::Histogram.stressed_container();
    cfg.fixed_capacity = Some(768);
    let (ramr, phoenix) = run_both(&Histogram, &input, cfg);
    assert_eq!(ramr.pairs, phoenix.pairs);
}
