//! Chaos suite: deterministic fault injection against the fault-tolerance
//! machinery of both runtimes.
//!
//! Faults come from `ramr-faultinject`: each word-count line carries its
//! index as a leading token, the fingerprint function maps it to a task
//! ordinal, and a `FaultPlan` decides which tasks panic, hang or dawdle.
//! Expected outputs are computed from the same plan, so every assertion is
//! exact — no "mostly works" tolerances. Every run sits behind a hard
//! test-side deadline so a fault-tolerance regression shows up as a failed
//! assertion, not a wedged CI job.

use std::collections::BTreeMap;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use mr_apps::{WordCount, WordCountString};
use mr_core::{ContainerKind, MapReduceJob, RuntimeConfig, RuntimeError};
use ramr::{Backend, Engine, JobScheduler, SchedError};
use ramr_containers::CompactKey;
use ramr_faultinject::{FaultKind, FaultPlan, FaultyJob};

/// Lines per task; the fingerprint function divides by this, so keep the
/// two in lockstep.
const TASK: usize = 32;
const LINES: usize = 400;

fn lines() -> Vec<String> {
    (0..LINES).map(|i| format!("t{i} alpha beta w{} v{}", i % 7, i % 13)).collect()
}

/// Task ordinal of a line: the leading `t<index>` token over [`TASK`].
/// `&String` (not `&str`): must match `FaultyJob`'s `fn(&J::Input) -> u64`.
#[allow(clippy::ptr_arg)]
fn ordinal_of(line: &String) -> u64 {
    let token = line.split_ascii_whitespace().next().expect("nonempty line");
    let index: u64 = token[1..].parse().expect("t<index> token");
    index / TASK as u64
}

/// Word counts of `input` with the tasks in `dropped` (by ordinal) removed
/// — the exact output of a skip-poison run.
fn reference(input: &[String], dropped: &[u64]) -> Vec<(String, u64)> {
    let mut counts = BTreeMap::new();
    for (i, line) in input.iter().enumerate() {
        if dropped.contains(&((i / TASK) as u64)) {
            continue;
        }
        for word in line.split_ascii_whitespace() {
            *counts.entry(word.to_ascii_lowercase()).or_insert(0u64) += 1;
        }
    }
    counts.into_iter().collect()
}

/// `WordCount` emits `CompactKey`s; the reference outputs here are
/// `String`-keyed, so runs convert at the boundary before comparing.
fn to_string_pairs(pairs: Vec<(CompactKey, u64)>) -> Vec<(String, u64)> {
    pairs.into_iter().map(|(k, v)| (k.as_str().to_owned(), v)).collect()
}

fn config(retries: u32, skip: bool, watchdog_ms: Option<u64>, adaptive: bool) -> RuntimeConfig {
    let mut builder = RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(TASK)
        .queue_capacity(256)
        .batch_size(16)
        .container(ContainerKind::Hash)
        .max_task_retries(retries)
        .skip_poison_tasks(skip);
    if let Some(ms) = watchdog_ms {
        builder = builder.watchdog(Duration::from_millis(ms));
    }
    if adaptive {
        builder = builder.adaptive(true).adapt_interval(Duration::from_millis(2));
    }
    builder.build().unwrap()
}

fn faulty(plan: FaultPlan) -> FaultyJob<WordCount> {
    FaultyJob::new(WordCount, plan, ordinal_of)
}

/// Runs `f` on a helper thread and panics if it outruns `secs` — chaos
/// tests must never hang the suite, even when fault tolerance regresses.
fn with_deadline<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(value) => {
            let _ = handle.join();
            value
        }
        Err(_) => panic!("chaos run exceeded the {secs}s deadline"),
    }
}

/// Whether `config` should arm the fast controller interval for a backend.
fn is_adaptive(backend: Backend) -> bool {
    backend == Backend::RamrAdaptive
}

fn run_engine(
    backend: Backend,
    cfg: &RuntimeConfig,
    job: &FaultyJob<WordCount>,
    input: &[String],
) -> Result<(Vec<(String, u64)>, ramr_telemetry::FaultMetrics), RuntimeError> {
    let outcome = backend.engine(cfg.clone())?.submit(job, input)?;
    Ok((to_string_pairs(outcome.output.pairs), outcome.report.faults))
}

#[test]
fn transient_faults_recover_with_exact_output_across_engines() {
    for backend in Backend::ALL {
        let adaptive = is_adaptive(backend);
        let (pairs, faults, attempts) = with_deadline(60, move || {
            let input = lines();
            let plan =
                FaultPlan::with_faults(vec![FaultKind::PanicOnTask { key: 3, fail_attempts: 2 }]);
            let job = faulty(plan);
            let cfg = config(2, false, None, adaptive);
            let (pairs, faults) = run_engine(backend, &cfg, &job, &input).unwrap();
            (pairs, faults, job.attempts_for(3))
        });
        assert_eq!(pairs, reference(&lines(), &[]), "{backend}: retried output must be exact");
        assert_eq!(attempts, 3, "{backend}: two failures then one success");
        assert_eq!(faults.retries, 2, "{backend}");
        assert!(faults.skipped.is_empty(), "{backend}");
    }
}

#[test]
fn exhausted_retries_abort_with_the_injected_panic_across_engines() {
    for backend in Backend::ALL {
        let adaptive = is_adaptive(backend);
        let err = with_deadline(60, move || {
            let input = lines();
            let plan = FaultPlan::with_faults(vec![FaultKind::PanicOnTask {
                key: 3,
                fail_attempts: u32::MAX,
            }]);
            let cfg = config(1, false, None, adaptive);
            run_engine(backend, &cfg, &faulty(plan), &input).unwrap_err()
        });
        assert!(
            matches!(err, RuntimeError::WorkerPanic(ref m) if m.contains("injected fault")),
            "{backend}: got {err}"
        );
    }
}

#[test]
fn skip_poison_completes_with_the_poison_task_recorded_across_engines() {
    for backend in Backend::ALL {
        let adaptive = is_adaptive(backend);
        let (pairs, faults) = with_deadline(60, move || {
            let input = lines();
            let plan = FaultPlan::with_faults(vec![FaultKind::PanicOnTask {
                key: 3,
                fail_attempts: u32::MAX,
            }]);
            let cfg = config(1, true, None, adaptive);
            run_engine(backend, &cfg, &faulty(plan), &input).unwrap()
        });
        assert_eq!(pairs, reference(&lines(), &[3]), "{backend}: exactly one task dropped");
        assert_eq!(faults.skipped.len(), 1, "{backend}");
        let skip = &faults.skipped[0];
        assert_eq!((skip.start, skip.end), (3 * TASK, 4 * TASK), "{backend}");
        assert_eq!(skip.attempts, 2, "{backend}: initial attempt + one retry");
        assert!(skip.message.contains("injected fault"), "{backend}: {}", skip.message);
        assert!(faults.summary().unwrap().contains("skipped"), "{backend}");
    }
}

#[test]
fn watchdog_cancels_a_hung_task_on_both_ramr_paths() {
    for adaptive in [false, true] {
        let err = with_deadline(30, move || {
            let input = lines();
            let plan = FaultPlan::with_faults(vec![FaultKind::HangOnTask { key: 5 }]);
            let cfg = config(0, false, Some(200), adaptive);
            Backend::of_ramr_config(&cfg)
                .engine(cfg)
                .unwrap()
                .submit(&faulty(plan), &input)
                .unwrap_err()
        });
        match err {
            RuntimeError::Stalled { idle_ms, ref diagnostics, .. } => {
                assert!(idle_ms >= 200, "adaptive={adaptive}: idle_ms={idle_ms}");
                assert!(!diagnostics.is_empty(), "adaptive={adaptive}");
            }
            other => panic!("adaptive={adaptive}: expected Stalled, got {other}"),
        }
    }
}

#[test]
fn slow_but_progressing_tasks_do_not_trip_the_watchdog() {
    for adaptive in [false, true] {
        let pairs = with_deadline(60, move || {
            let input = lines();
            let plan = FaultPlan::with_faults(vec![
                FaultKind::DelayTask { key: 2, micros: 20_000 },
                FaultKind::DelayTask { key: 7, micros: 20_000 },
            ]);
            let cfg = config(0, false, Some(500), adaptive);
            let outcome = Backend::of_ramr_config(&cfg)
                .engine(cfg)
                .unwrap()
                .submit(&faulty(plan), &input)
                .unwrap();
            to_string_pairs(outcome.output.pairs)
        });
        assert_eq!(pairs, reference(&lines(), &[]), "adaptive={adaptive}");
    }
}

#[test]
fn seeded_chaos_plans_replay_to_the_exact_output_across_engines() {
    // Seeded transient panics (1–3 failing attempts each); retries = 3
    // covers the worst draw, so every engine must converge to the full
    // reference output — and do so identically for the same seed.
    let tasks = LINES.div_ceil(TASK) as u64;
    for seed in [11u64, 97, 2026] {
        let plan = FaultPlan::seeded_panics(seed, tasks, 4);
        assert_eq!(plan.faults(), FaultPlan::seeded_panics(seed, tasks, 4).faults());
        for backend in Backend::ALL {
            let adaptive = is_adaptive(backend);
            let plan = plan.clone();
            let (pairs, faults) = with_deadline(120, move || {
                let input = lines();
                let cfg = config(3, false, Some(5_000), adaptive);
                run_engine(backend, &cfg, &faulty(plan), &input).unwrap()
            });
            assert_eq!(pairs, reference(&lines(), &[]), "{backend} seed={seed}");
            assert!(faults.retries >= 1, "{backend} seed={seed}: plans always hold faults");
            assert!(faults.skipped.is_empty(), "{backend} seed={seed}");
        }
    }
}

#[test]
fn a_poison_tenant_through_the_scheduler_fails_alone_across_engines() {
    // Scheduler-level fault isolation: a tenant whose every job aborts with
    // an injected panic shares the pool with two concurrently submitting
    // healthy tenants. The victim must collect its own `WorkerPanic` per
    // job; the bystanders' outputs must be byte-identical to the serial
    // reference throughout — no wedge, no bleed, on every engine.
    for backend in Backend::ALL {
        let adaptive = is_adaptive(backend);
        with_deadline(120, move || {
            let cfg = config(1, false, None, adaptive);
            let sched = Arc::new(JobScheduler::<FaultyJob<WordCount>>::new(backend, cfg).unwrap());
            let input = Arc::new(lines());
            let expected = reference(&input, &[]);

            let mut bystanders = Vec::new();
            for b in 0..2 {
                let sched = Arc::clone(&sched);
                let input = Arc::clone(&input);
                let expected = expected.clone();
                bystanders.push(thread::spawn(move || {
                    let client = sched.client(&format!("bystander-{b}"));
                    for round in 0..4 {
                        let job = Arc::new(faulty(FaultPlan::default()));
                        let done = client.submit(job, Arc::clone(&input)).unwrap().wait().unwrap();
                        assert_eq!(
                            to_string_pairs(done.output.pairs),
                            expected,
                            "{backend} bystander-{b} round {round}"
                        );
                    }
                }));
            }

            let victim = sched.client("victim");
            for round in 0..4 {
                let plan = FaultPlan::with_faults(vec![FaultKind::PanicOnTask {
                    key: 3,
                    fail_attempts: u32::MAX,
                }]);
                let err = victim.submit(Arc::new(faulty(plan)), Arc::clone(&input)).unwrap().wait();
                match err {
                    Err(SchedError::Job(RuntimeError::WorkerPanic(ref m))) => {
                        assert!(m.contains("injected fault"), "{backend} round {round}: {m}")
                    }
                    other => panic!(
                        "{backend} round {round}: expected the injected panic, got {other:?}"
                    ),
                }
            }
            for handle in bystanders {
                handle.join().unwrap();
            }

            let stats = sched.tenant_stats();
            let victim_stats = stats.iter().find(|s| s.tenant == "victim").unwrap();
            assert_eq!(victim_stats.failed, 4, "{backend}: every poisoned job must fail");
            assert_eq!(victim_stats.completed, 0, "{backend}");
            for b in 0..2 {
                let s = stats.iter().find(|s| s.tenant == format!("bystander-{b}")).unwrap();
                assert_eq!(
                    (s.completed, s.failed, s.shed),
                    (4, 0, 0),
                    "{backend} bystander-{b}: the victim's faults leaked into its accounting"
                );
            }
        });
    }
}

#[test]
fn non_retry_safe_jobs_fail_fast_regardless_of_budget() {
    /// WordCount minus the retry-safety declaration.
    struct Undeclared;
    impl MapReduceJob for Undeclared {
        type Input = String;
        type Key = String;
        type Value = u64;
        fn map(&self, task: &[String], emit: &mut mr_core::Emitter<'_, String, u64>) {
            WordCountString.map(task, emit);
        }
        fn combine(&self, acc: &mut u64, v: u64) {
            *acc += v;
        }
    }

    for backend in Backend::ALL {
        let adaptive = is_adaptive(backend);
        let err = with_deadline(60, move || {
            let input = lines();
            let plan =
                FaultPlan::with_faults(vec![FaultKind::PanicOnTask { key: 3, fail_attempts: 1 }]);
            let job = FaultyJob::new(Undeclared, plan, ordinal_of);
            let cfg = config(5, true, None, adaptive);
            backend.engine(cfg).unwrap().submit(&job, &input).unwrap_err()
        });
        assert!(matches!(err, RuntimeError::WorkerPanic(_)), "{backend}: got {err}");
    }
}
