//! Stress tests: degenerate queue sizes, oversubscription, heavy emission
//! fan-out, and sustained pressure through tiny pipelines.

use mr_core::{ContainerKind, Emitter, MapReduceJob, RuntimeConfig};
use ramr::{Backend, Engine};

/// Emits FAN pairs per element to stress the queues.
struct FanOut;

const FAN: u64 = 32;

impl MapReduceJob for FanOut {
    type Input = u64;
    type Key = u32;
    type Value = u64;

    fn map(&self, task: &[u64], emit: &mut Emitter<'_, u32, u64>) {
        for &x in task {
            for i in 0..FAN {
                emit.emit(((x + i) % 1024) as u32, x + i);
            }
        }
    }

    fn combine(&self, acc: &mut u64, v: u64) {
        *acc = acc.wrapping_add(v);
    }

    fn key_space(&self) -> Option<usize> {
        Some(1024)
    }

    fn key_index(&self, k: &u32) -> usize {
        *k as usize
    }
}

fn reference(input: &[u64]) -> Vec<(u32, u64)> {
    let mut sums = std::collections::BTreeMap::new();
    for &x in input {
        for i in 0..FAN {
            let k = ((x + i) % 1024) as u32;
            let e = sums.entry(k).or_insert(0u64);
            *e = e.wrapping_add(x + i);
        }
    }
    sums.into_iter().collect()
}

#[test]
fn single_slot_queues_do_not_deadlock() {
    let input: Vec<u64> = (0..20_000).collect();
    let cfg = RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(64)
        .queue_capacity(1)
        .batch_size(1)
        .build()
        .unwrap();
    let out = Backend::RamrStatic.engine(cfg).unwrap().submit(&FanOut, &input).unwrap().output;
    assert_eq!(out.pairs, reference(&input));
    assert!(out.stats.queue_full_events > 0);
}

#[test]
fn oversubscribed_pools_terminate() {
    // Far more threads than this machine has cores.
    let input: Vec<u64> = (0..50_000).collect();
    let cfg = RuntimeConfig::builder()
        .num_workers(16)
        .num_combiners(16)
        .task_size(128)
        .queue_capacity(64)
        .batch_size(16)
        .build()
        .unwrap();
    let out = Backend::RamrStatic.engine(cfg).unwrap().submit(&FanOut, &input).unwrap().output;
    assert_eq!(out.pairs, reference(&input));
}

#[test]
fn sustained_pressure_with_heavy_fanout() {
    let input: Vec<u64> = (0..100_000).collect();
    let cfg = RuntimeConfig::builder()
        .num_workers(6)
        .num_combiners(2)
        .task_size(1000)
        .queue_capacity(100)
        .batch_size(50)
        .build()
        .unwrap();
    let out = Backend::RamrStatic.engine(cfg).unwrap().submit(&FanOut, &input).unwrap().output;
    assert_eq!(out.stats.emitted, input.len() as u64 * FAN);
    assert_eq!(out.pairs, reference(&input));
}

#[test]
fn repeated_invocations_are_stable() {
    // The runtime is reusable: many invocations on one instance.
    let input: Vec<u64> = (0..5_000).collect();
    let expected = reference(&input);
    let cfg = RuntimeConfig::builder()
        .num_workers(3)
        .num_combiners(3)
        .task_size(77)
        .queue_capacity(32)
        .batch_size(8)
        .build()
        .unwrap();
    let engine = Backend::RamrStatic.engine(cfg).unwrap();
    for round in 0..20 {
        let out = engine.submit(&FanOut, &input).unwrap().output;
        assert_eq!(out.pairs, expected, "round {round}");
    }
}

#[test]
fn both_runtimes_survive_empty_and_tiny_inputs() {
    let cfg = RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(1)
        .queue_capacity(2)
        .batch_size(1)
        .build()
        .unwrap();
    for n in [0usize, 1, 2, 3, 7] {
        let input: Vec<u64> = (0..n as u64).collect();
        let r = Backend::RamrStatic
            .engine(cfg.clone())
            .unwrap()
            .submit(&FanOut, &input)
            .unwrap()
            .output;
        let p =
            Backend::Phoenix.engine(cfg.clone()).unwrap().submit(&FanOut, &input).unwrap().output;
        assert_eq!(r.pairs, p.pairs, "n={n}");
        assert_eq!(r.pairs, reference(&input));
    }
}

#[test]
fn combine_panic_does_not_hang_the_pipeline() {
    struct PanickyCombine;
    impl MapReduceJob for PanickyCombine {
        type Input = u64;
        type Key = u32;
        type Value = u64;
        fn map(&self, task: &[u64], emit: &mut Emitter<'_, u32, u64>) {
            for &x in task {
                emit.emit((x % 8) as u32, x);
            }
        }
        fn combine(&self, acc: &mut u64, v: u64) {
            if *acc > 50 {
                panic!("combine exploded");
            }
            *acc += v;
        }
        fn key_space(&self) -> Option<usize> {
            Some(8)
        }
        fn key_index(&self, k: &u32) -> usize {
            *k as usize
        }
    }
    let input: Vec<u64> = (0..10_000).collect();
    let cfg = RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(32)
        .queue_capacity(16)
        .batch_size(4)
        .build()
        .unwrap();
    // Must terminate (no deadlock on full queues) and surface the panic.
    let err = Backend::RamrStatic.engine(cfg).unwrap().submit(&PanickyCombine, &input).unwrap_err();
    assert!(
        matches!(err, mr_core::RuntimeError::WorkerPanic(ref m) if m.contains("combine exploded")),
        "got {err:?}"
    );
}

/// Regression guard for the combiner's discard-drain error path: a mapper
/// panic AND a combine panic in the same run, while 2-slot busy-wait queues
/// are saturated. The run must terminate (mappers keep draining against
/// dead combiners, combiners keep consuming after their first error) and
/// surface *a* worker panic — which pool loses the race is scheduling-
/// dependent, so either message is acceptable.
#[test]
fn dual_panic_with_full_busywait_queues_terminates() {
    struct DualFailure;
    impl MapReduceJob for DualFailure {
        type Input = u64;
        type Key = u32;
        type Value = u64;
        fn map(&self, task: &[u64], emit: &mut Emitter<'_, u32, u64>) {
            for &x in task {
                if x == 999 {
                    panic!("mapper exploded mid-stream");
                }
                // Fan out to keep the 2-slot queues saturated.
                for i in 0..8 {
                    emit.emit(((x + i) % 16) as u32, x);
                }
            }
        }
        fn combine(&self, acc: &mut u64, v: u64) {
            if v == 77 {
                panic!("combine exploded");
            }
            *acc = acc.wrapping_add(v);
        }
        fn key_space(&self) -> Option<usize> {
            Some(16)
        }
        fn key_index(&self, k: &u32) -> usize {
            *k as usize
        }
    }
    // Both panic triggers (77 and 999) fire early, so most of the input is
    // pumped through the combiner's discard-drain path. Termination on a
    // 1-core host hinges on BusyWait's periodic yield; before that escape
    // hatch this run took minutes (every 2-slot handoff cost a scheduler
    // round trip).
    let input: Vec<u64> = (0..10_000).collect();
    let cfg = RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(16)
        .queue_capacity(2)
        .batch_size(2)
        .push_backoff(mr_core::PushBackoff::BusyWait)
        .build()
        .unwrap();
    // Run under a hard timeout: a deadlock here would otherwise hang the
    // whole suite, which is exactly the regression this test guards.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let result =
            Backend::RamrStatic.engine(cfg).unwrap().submit(&DualFailure, &input).map(|o| o.output);
        let _ = tx.send(result);
    });
    let result = rx
        .recv_timeout(std::time::Duration::from_secs(60))
        .expect("dual-panic run deadlocked: no result within 60s");
    let err = result.unwrap_err();
    assert!(
        matches!(err, mr_core::RuntimeError::WorkerPanic(ref m)
            if m.contains("mapper exploded") || m.contains("combine exploded")),
        "got {err:?}"
    );
}

#[test]
fn hash_container_stress_with_many_keys() {
    struct WideKeys;
    impl MapReduceJob for WideKeys {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        fn map(&self, task: &[u64], emit: &mut Emitter<'_, u64, u64>) {
            for &x in task {
                emit.emit(x.wrapping_mul(0x9e37_79b9_7f4a_7c15), 1);
            }
        }
        fn combine(&self, acc: &mut u64, v: u64) {
            *acc += v;
        }
    }
    let input: Vec<u64> = (0..200_000).collect();
    let cfg = RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(512)
        .queue_capacity(1000)
        .batch_size(100)
        .container(ContainerKind::Hash)
        .build()
        .unwrap();
    let out = Backend::RamrStatic.engine(cfg).unwrap().submit(&WideKeys, &input).unwrap().output;
    assert_eq!(out.len(), 200_000, "all keys distinct");
    assert!(out.iter().all(|(_, v)| *v == 1));
}
