//! Wire-level resilience under seeded network chaos.
//!
//! A real `ramr serve` server, a real [`ServeClient`], and a
//! [`ChaosProxy`] between them that deterministically delays, splits,
//! truncates, and kills connections. The headline invariant is
//! **exactly-once execution across connection churn**: every job a
//! client observes completing must appear in the scheduler's own
//! execution ledger exactly once — re-sent `SUBMIT`s after a reconnect
//! re-attach, they never re-run. Around it: per-tenant token-bucket
//! rate limiting (`ShedReason::RateLimited`), heartbeat negotiation and
//! idle-deadline enforcement, and server-side parking/replay of
//! terminal frames for disconnected tenants.
//!
//! Chaos runs are seeded; a failing seed replays bit-identically
//! through the proxy's plans (`ramr_faultinject::net::plan_for`).

use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mr_core::RuntimeConfig;
use ramr::Backend;
use ramr_faultinject::net::ChaosProxy;
use ramr_serve::proto::{self, RequestKind, ResponseKind, PROTOCOL_VERSION};
use ramr_serve::{ClientOptions, JobRequest, ServeClient, ServeConfig, ServeError, Server};
use ramr_telemetry::json::Value;

/// Table I divisor used throughout: large enough that each job is around
/// a millisecond, so chaos runs stay fast.
const SCALE: u64 = 20_000;

fn base_config() -> RuntimeConfig {
    RuntimeConfig::builder()
        .num_workers(2)
        .num_combiners(1)
        .task_size(256)
        .queue_capacity(5000)
        .batch_size(500)
        .build()
        .expect("valid test config")
}

fn boot(mutate: impl FnOnce(&mut ServeConfig)) -> (Server, std::net::SocketAddr) {
    let mut config = ServeConfig { base: base_config(), ..ServeConfig::default() };
    config.addr = "127.0.0.1:0".into();
    config.max_pools = 8;
    mutate(&mut config);
    let server = Server::bind(config).expect("server binds loopback");
    let addr = server.local_addr();
    (server, addr)
}

fn wc_request(backend: Backend) -> JobRequest {
    let mut request = JobRequest::new("wc");
    request.scale = SCALE;
    request.backend = Some(backend.as_str().to_string());
    request
}

/// Client tuning for chaos runs: fast reconnects, generous attempt
/// budget (the proxy may kill several consecutive dials).
fn chaos_options() -> ClientOptions {
    ClientOptions {
        reconnect: true,
        max_reconnect_attempts: 16,
        backoff_base_ms: 5,
        backoff_cap_ms: 200,
        heartbeat_ms: 0,
    }
}

/// Sends one raw frame on `stream`.
fn raw_send(stream: &mut TcpStream, members: &[(&str, Value)]) {
    let obj: std::collections::BTreeMap<String, Value> =
        members.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect();
    proto::write_frame(stream, &Value::Obj(obj), 1 << 20).expect("raw frame writes");
}

/// Reads raw frames until one of type `want` arrives (skipping others),
/// or panics after `within`.
fn raw_read(reader: &mut BufReader<TcpStream>, want: ResponseKind, within: Duration) -> Value {
    let deadline = Instant::now() + within;
    loop {
        assert!(Instant::now() < deadline, "no {want:?} frame within {within:?}");
        match proto::read_frame(reader, 1 << 20) {
            Ok(Some(frame)) => {
                if proto::frame_type(&frame).ok() == Some(want.as_str()) {
                    return frame;
                }
            }
            Ok(None) => panic!("connection closed while waiting for {want:?}"),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("read failed waiting for {want:?}: {e}"),
        }
    }
}

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

/// Finds the per-tenant ledger entry in a METRICS_REPORT's top-level
/// `tenants` array.
fn tenant_entry(metrics: &Value, tenant: &str) -> Value {
    match metrics.get("tenants") {
        Some(Value::Arr(tenants)) => tenants
            .iter()
            .find(|t| t.get("tenant").and_then(Value::as_str) == Some(tenant))
            .cloned()
            .unwrap_or_else(|| panic!("tenant {tenant:?} missing from METRICS_REPORT")),
        other => panic!("METRICS_REPORT missing tenants array: {other:?}"),
    }
}

fn counter(entry: &Value, field: &str) -> u64 {
    entry.get(field).and_then(Value::as_u64).unwrap_or_else(|| panic!("missing {field}"))
}

/// The tentpole: jobs submitted through a killing, splitting, delaying
/// proxy complete exactly once each, across nine seeds covering all
/// three backends. The proxy's first connection always draws a
/// mid-frame kill, so every seed exercises reconnect-and-resume; the
/// invariant is audited against the scheduler's own execution ledger,
/// not just the client's view.
#[test]
fn jobs_survive_connection_churn_exactly_once() {
    for seed in 1..=9u64 {
        let backend = Backend::ALL[(seed as usize) % Backend::ALL.len()];
        let (server, upstream) = boot(|_| {});
        let mut proxy = ChaosProxy::launch(upstream, seed, 3).expect("proxy launches");
        let mut client =
            ServeClient::connect_with(&proxy.addr().to_string(), "chaos", None, chaos_options())
                .expect("client connects through the proxy");

        const JOBS: usize = 5;
        let request = wc_request(backend);
        let mut digests = Vec::new();
        let mut rids = Vec::new();
        for job in 0..JOBS {
            let result = client
                .run_job(&request)
                .unwrap_or_else(|e| panic!("seed {seed} job {job} on {backend}: {e}"));
            assert!(result.keys > 0, "seed {seed} job {job}: empty result");
            digests.push(result.digest.clone());
            rids.push(result.request_id.clone().expect("RESULT echoes the request_id"));
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "seed {seed} on {backend}: digests diverged across churn: {digests:?}"
        );

        // Exactly-once, from the horse's mouth: the scheduler's claim
        // ledger holds each wire job's tenant-scoped tag exactly once —
        // no tag missing (a lost job) and none doubled (a re-execution).
        let ledger = server.execution_ledger();
        assert_eq!(
            ledger.len(),
            JOBS,
            "seed {seed} on {backend}: {} executions for {JOBS} jobs: {ledger:?}",
            ledger.len()
        );
        for rid in &rids {
            let tag = format!("chaos:{rid}");
            let runs = ledger.iter().filter(|t| **t == tag).count();
            assert_eq!(runs, 1, "seed {seed} on {backend}: {tag} executed {runs} times");
        }

        // The churn was real: the first proxied connection is always
        // killed mid-frame, so the client must have resumed at least
        // once — and each surfaced result was surfaced exactly once
        // (replayed duplicates are absorbed, counted, and dropped).
        assert!(proxy.kills() >= 1, "seed {seed}: proxy never killed a connection");
        assert!(client.reconnects() >= 1, "seed {seed}: client never reconnected");

        drop(client);
        proxy.shutdown();
        drop(server);
    }
}

/// Per-tenant token-bucket rate limiting: a flooding tenant sheds with
/// the typed `rate-limited` reason while an under-limit tenant on the
/// same server sheds zero, and both the pool stats and the tenant
/// ledger counters record the split.
#[test]
fn rate_limited_tenant_sheds_while_quiet_tenant_sails() {
    let (server, addr) = boot(|c| c.rate = 5.0);
    let addr = addr.to_string();

    let mut flood = ServeClient::connect(&addr, "flood", None).expect("flood connects");
    let mut accepted = 0u64;
    let mut rate_sheds = 0u64;
    for _ in 0..20 {
        match flood.submit(&wc_request(Backend::ALL[0])) {
            Ok(_) => accepted += 1,
            Err(ServeError::Shed { reason, retry_after_ms }) => {
                assert_eq!(reason, "rate-limited", "flood must shed as rate-limited");
                assert!(retry_after_ms > 0, "rate-limit shed must carry a retry hint");
                rate_sheds += 1;
            }
            Err(other) => panic!("flood submit failed oddly: {other}"),
        }
    }
    assert!(rate_sheds >= 1, "20 rapid submits against 5/s never shed");
    assert!(accepted >= 1, "the burst allowance admitted nothing");

    // The under-limit tenant on the same server: one job, zero sheds.
    let mut quiet = ServeClient::connect(&addr, "quiet", None).expect("quiet connects");
    let result = quiet.run_job(&wc_request(Backend::ALL[0])).expect("quiet job completes");
    assert_eq!(result.sheds, 0, "the quiet tenant absorbed backpressure it never caused");

    // Drain the flood's accepted jobs so the server quiesces cleanly.
    for _ in 0..accepted {
        flood.next_result().expect("accepted flood job completes");
    }

    let metrics = quiet.metrics().expect("metrics snapshot");
    let flood_ledger = tenant_entry(&metrics, "flood");
    assert_eq!(counter(&flood_ledger, "rate_limited"), rate_sheds, "ledger miscounts sheds");
    let quiet_ledger = tenant_entry(&metrics, "quiet");
    assert_eq!(counter(&quiet_ledger, "rate_limited"), 0);
    // The pool-level tenant stats carry the same story, typed.
    let pools = match metrics.get("pools") {
        Some(Value::Arr(pools)) => pools.clone(),
        other => panic!("metrics missing pools: {other:?}"),
    };
    let flood_stats = pools
        .iter()
        .filter_map(|p| match p.get("tenants") {
            Some(Value::Arr(tenants)) => tenants
                .iter()
                .find(|t| t.get("tenant").and_then(Value::as_str) == Some("flood"))
                .cloned(),
            _ => None,
        })
        .next()
        .expect("flood tenant stats listed");
    assert_eq!(
        flood_stats.get("shed_rate_limited"),
        Some(&num(rate_sheds)),
        "pool stats miss the typed rate-limit shed count"
    );
    assert_eq!(flood_stats.get("shed"), Some(&num(rate_sheds)));
    drop(server);
}

/// Heartbeat negotiation and enforcement: the server caps the client's
/// proposal, answers `PING` with nonce-echoing `PONG`, keeps a pinging
/// connection alive past the idle deadline, and drops a silent one.
#[test]
fn heartbeats_negotiate_echo_and_enforce_the_idle_deadline() {
    let (server, addr) = boot(|c| c.heartbeat_ms = 50);

    // Proposal above the server ceiling: negotiated down to the cap.
    let mut stream = TcpStream::connect(addr).expect("dial");
    stream.set_read_timeout(Some(Duration::from_millis(50))).ok();
    raw_send(
        &mut stream,
        &[
            ("type", Value::Str(RequestKind::Hello.as_str().into())),
            ("tenant", Value::Str("pulse".into())),
            ("version", Value::Num(PROTOCOL_VERSION as f64)),
            ("heartbeat_ms", num(500)),
        ],
    );
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let welcome = raw_read(&mut reader, ResponseKind::Welcome, Duration::from_secs(5));
    assert_eq!(
        welcome.get("heartbeat_ms"),
        Some(&num(50)),
        "server must negotiate min(proposal, ceiling)"
    );

    // PING → PONG with the nonce echoed; steady pinging keeps the
    // connection alive well past the 3-interval idle deadline.
    let alive_until = Instant::now() + Duration::from_millis(400);
    while Instant::now() < alive_until {
        raw_send(
            &mut stream,
            &[("type", Value::Str(RequestKind::Ping.as_str().into())), ("nonce", num(77))],
        );
        let pong = raw_read(&mut reader, ResponseKind::Pong, Duration::from_secs(5));
        assert_eq!(pong.get("nonce"), Some(&num(77)), "PONG must echo the PING nonce");
        std::thread::sleep(Duration::from_millis(40));
    }

    // Now go silent: the server must drop the connection once
    // 3 * heartbeat_ms of idleness pass (with scheduling slack).
    let deadline = Instant::now() + Duration::from_secs(10);
    let dropped = loop {
        if Instant::now() > deadline {
            break false;
        }
        match proto::read_frame(&mut reader, 1 << 20) {
            Ok(Some(_)) => {}
            Ok(None) => break true,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break true,
        }
    };
    assert!(dropped, "server never enforced the idle deadline on a silent connection");

    // A tenant that declines heartbeats is never idle-dropped: silence
    // for far longer than the deadline leaves the connection usable.
    let mut quiet = TcpStream::connect(addr).expect("dial");
    quiet.set_read_timeout(Some(Duration::from_millis(50))).ok();
    raw_send(
        &mut quiet,
        &[
            ("type", Value::Str(RequestKind::Hello.as_str().into())),
            ("tenant", Value::Str("no-pulse".into())),
            ("version", Value::Num(PROTOCOL_VERSION as f64)),
        ],
    );
    let mut quiet_reader = BufReader::new(quiet.try_clone().expect("clone"));
    let welcome = raw_read(&mut quiet_reader, ResponseKind::Welcome, Duration::from_secs(5));
    assert_eq!(welcome.get("heartbeat_ms"), Some(&num(0)), "no proposal → no heartbeat");
    std::thread::sleep(Duration::from_millis(400));
    raw_send(&mut quiet, &[("type", Value::Str(RequestKind::Metrics.as_str().into()))]);
    raw_read(&mut quiet_reader, ResponseKind::MetricsReport, Duration::from_secs(5));
    drop(server);
}

/// Server-side parking and replay, frame by frame: a terminal frame for
/// a disconnected tenant parks in the dedup ledger; re-sending the same
/// `request_id` on a fresh connection re-ACCEPTs and replays it — and
/// the job executed exactly once. Past the park TTL the ledger forgets,
/// and the same id runs fresh (the documented at-most-TTL guarantee).
#[test]
fn parked_terminals_replay_on_reclaim_and_expire_after_ttl() {
    let (server, addr) = boot(|c| c.park_ttl_ms = 700);

    let submit_frame = |rid: &str| {
        vec![
            ("type", Value::Str(RequestKind::Submit.as_str().into())),
            ("id", num(1)),
            ("request_id", Value::Str(rid.into())),
            ("app", Value::Str("wc".into())),
            ("platform", Value::Str("hwl".into())),
            ("flavor", Value::Str("small".into())),
            // Heavier than the chaos jobs so the disconnect reliably
            // beats the result.
            ("scale", num(SCALE / 40)),
        ]
    };
    let hello = |tenant: &str| {
        vec![
            ("type", Value::Str(RequestKind::Hello.as_str().into())),
            ("tenant", Value::Str(tenant.into())),
            ("version", Value::Num(PROTOCOL_VERSION as f64)),
        ]
    };

    // Submit, get ACCEPTED, vanish before the RESULT can be delivered.
    let mut first = TcpStream::connect(addr).expect("dial");
    first.set_read_timeout(Some(Duration::from_millis(50))).ok();
    raw_send(&mut first, &hello("parker"));
    let mut first_reader = BufReader::new(first.try_clone().expect("clone"));
    raw_read(&mut first_reader, ResponseKind::Welcome, Duration::from_secs(5));
    raw_send(&mut first, &submit_frame("park-me"));
    raw_read(&mut first_reader, ResponseKind::Accepted, Duration::from_secs(5));
    drop(first_reader);
    drop(first);

    // Let the job finish and its terminal frame park server-side.
    std::thread::sleep(Duration::from_millis(400));

    // Reconnect and re-send the same request_id: re-ACCEPTED, terminal
    // frame replayed, no second execution.
    let mut second = TcpStream::connect(addr).expect("redial");
    second.set_read_timeout(Some(Duration::from_millis(50))).ok();
    raw_send(&mut second, &hello("parker"));
    let mut second_reader = BufReader::new(second.try_clone().expect("clone"));
    raw_read(&mut second_reader, ResponseKind::Welcome, Duration::from_secs(5));
    raw_send(&mut second, &submit_frame("park-me"));
    raw_read(&mut second_reader, ResponseKind::Accepted, Duration::from_secs(5));
    let replayed = raw_read(&mut second_reader, ResponseKind::Result, Duration::from_secs(5));
    assert_eq!(
        replayed.get("request_id").and_then(Value::as_str),
        Some("park-me"),
        "replayed terminal frame must carry the request_id"
    );
    assert_eq!(
        server.execution_ledger(),
        vec!["parker:park-me".to_string()],
        "the reclaim must replay, not re-execute"
    );

    // The ledger accounting saw all of it: one reconnect, one dedup
    // hit, one parked frame.
    raw_send(&mut second, &[("type", Value::Str(RequestKind::Metrics.as_str().into()))]);
    let metrics = raw_read(&mut second_reader, ResponseKind::MetricsReport, Duration::from_secs(5));
    let ledger = tenant_entry(&metrics, "parker");
    assert_eq!(counter(&ledger, "reconnects"), 1);
    assert!(counter(&ledger, "dedup_hits") >= 1, "reclaim must count as a dedup hit");
    assert!(counter(&ledger, "parked") >= 1, "undeliverable terminal must count as parked");
    assert_eq!(counter(&ledger, "ledger_in_flight"), 0);

    // Past the park TTL the claimed entry is swept; the same id then
    // runs fresh — exactly-once holds only within the TTL, by design.
    std::thread::sleep(Duration::from_millis(900));
    raw_send(&mut second, &submit_frame("park-me"));
    raw_read(&mut second_reader, ResponseKind::Accepted, Duration::from_secs(5));
    raw_read(&mut second_reader, ResponseKind::Result, Duration::from_secs(10));
    assert_eq!(
        server.execution_ledger().len(),
        2,
        "a request_id re-sent after the park TTL must run fresh"
    );
    drop(server);
}

/// A reconnecting [`ServeClient`] end to end against a hard mid-job
/// disconnect (no proxy randomness): the server's bounded outbound
/// queue, rebinding, and the client's resume path deliver the result on
/// the second connection — with the execution ledger again showing one
/// run.
#[test]
fn client_resume_reattaches_to_an_in_flight_job() {
    let (server, addr) = boot(|_| {});
    let addr = addr.to_string();
    let mut client =
        ServeClient::connect_with(&addr, "resume", None, chaos_options()).expect("connect");

    // A long job (about 40x the chaos scale) so the submit comfortably
    // outlives the disconnect we're about to inflict via the slow path:
    // submit, then sever by dropping and re-submitting the same rid from
    // a fresh client is covered above — here we just prove the happy
    // path of the full client against a clean server stays exactly-once.
    let mut request = wc_request(Backend::ALL[0]);
    request.scale = SCALE / 40;
    let result = client.run_job(&request).expect("job completes");
    assert!(result.keys > 0);
    assert_eq!(result.sheds, 0);
    let rid = result.request_id.expect("request_id echoed");
    assert_eq!(server.execution_ledger(), vec![format!("resume:{rid}")]);
    assert_eq!(client.reconnects(), 0, "clean run must not reconnect");
    assert_eq!(client.duplicate_terminals(), 0);
    drop(server);
}
