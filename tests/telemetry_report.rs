//! End-to-end telemetry: a real run's metrics dump must round-trip through
//! JSON on disk, and both runtimes' telemetry must satisfy the conservation
//! and accounting invariants the CLI and tuning docs rely on.

use mr_core::{Emitter, MapReduceJob, RuntimeConfig};
use ramr::{Backend, Engine};
use ramr_telemetry::report::MetricsReport;
use ramr_telemetry::ThreadRole;

struct Mod13;

impl MapReduceJob for Mod13 {
    type Input = u64;
    type Key = u64;
    type Value = u64;

    fn map(&self, task: &[u64], emit: &mut Emitter<'_, u64, u64>) {
        for &x in task {
            emit.emit(x % 13, 1);
        }
    }

    fn combine(&self, acc: &mut u64, v: u64) {
        *acc += v;
    }

    fn key_space(&self) -> Option<usize> {
        Some(13)
    }

    fn key_index(&self, k: &u64) -> usize {
        *k as usize
    }
}

fn config() -> RuntimeConfig {
    RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(500)
        .queue_capacity(256)
        .batch_size(32)
        .build()
        .unwrap()
}

/// Builds the report exactly the way the CLI's `--metrics-json` path does.
fn report_from_run(input: &[u64]) -> MetricsReport {
    let engine = Backend::RamrStatic.engine(config()).unwrap();
    let outcome = engine.submit(&Mod13, input).unwrap();
    let (out, run) = (outcome.output, outcome.report);
    let ns = |d: std::time::Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    let stats = &out.stats;
    MetricsReport {
        app: "mod13".into(),
        runtime: "ramr".into(),
        workers: 4,
        combiners: 2,
        batch_size: 32,
        emit_buffer: 32,
        queue_capacity: 256,
        phase_ns: [ns(stats.partition), ns(stats.map_combine), ns(stats.reduce), ns(stats.merge)],
        emitted: stats.emitted,
        consumed: run.consumed,
        threads: run.threads,
        faults: run.faults,
    }
}

#[test]
fn metrics_json_round_trips_through_a_file() {
    let input: Vec<u64> = (0..50_000).collect();
    let report = report_from_run(&input);
    let path = std::env::temp_dir().join(format!("ramr-metrics-{}.json", std::process::id()));
    std::fs::write(&path, report.to_json()).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let back = MetricsReport::from_json(&text).expect("file round trip");
    assert_eq!(back, report);
    assert_eq!(back.suggested_ratio(), report.suggested_ratio());
}

#[test]
fn real_run_report_satisfies_conservation() {
    let input: Vec<u64> = (0..50_000).collect();
    let report = report_from_run(&input);
    assert_eq!(report.emitted, 50_000);
    assert_eq!(report.consumed, report.emitted, "pipeline must conserve pairs");
    let mapper_items: u64 =
        report.threads.iter().filter(|t| t.role == ThreadRole::Mapper).map(|t| t.items).sum();
    assert_eq!(mapper_items, report.emitted);
    // Telemetry defaults on: both pools accrued busy time, so the
    // throughput criterion is derivable from any run.
    assert!(report.map_throughput().is_some());
    assert!(report.combine_throughput().is_some());
    assert!(report.suggested_ratio().unwrap() >= 1);
}

#[test]
fn both_runtimes_expose_comparable_telemetry() {
    let input: Vec<u64> = (0..20_000).collect();
    let ramr_report =
        Backend::RamrStatic.engine(config()).unwrap().submit(&Mod13, &input).unwrap().report;
    let phx_report =
        Backend::Phoenix.engine(config()).unwrap().submit(&Mod13, &input).unwrap().report;
    let ramr_items: u64 =
        ramr_report.threads.iter().filter(|t| t.role == ThreadRole::Mapper).map(|t| t.items).sum();
    let phx_items: u64 = phx_report.threads.iter().map(|t| t.items).sum();
    assert_eq!(ramr_items, phx_items, "both runtimes emit the same pairs");
    // The baseline's workers never stall (inline combine); the decoupled
    // runtime may — but both account busy time, and Phoenix's inline
    // combine consumes exactly what its workers emitted.
    assert!(phx_report.threads.iter().all(|t| t.stalled.is_zero()));
    assert_eq!(phx_report.consumed, phx_items);
    assert!(phx_report.suggested_ratio.is_none(), "Phoenix has no role split to tune");
}
