//! Property-based differential testing: random commutative-monoid jobs over
//! random inputs must agree between the two runtimes and a sequential
//! reference, for arbitrary configurations.

use mr_core::{ContainerKind, Emitter, MapReduceJob, RuntimeConfig};
use proptest::prelude::*;
use ramr::{Backend, Engine};

/// Which commutative, associative fold the job uses.
#[derive(Debug, Clone, Copy)]
enum Fold {
    Sum,
    Min,
    Max,
    SaturatingMul,
}

#[derive(Debug)]
struct RandomJob {
    key_space: u32,
    fold: Fold,
    emits: u8,
}

impl MapReduceJob for RandomJob {
    type Input = u64;
    type Key = u32;
    type Value = u64;

    fn map(&self, task: &[u64], emit: &mut Emitter<'_, u32, u64>) {
        for &x in task {
            for i in 0..u64::from(self.emits) {
                let key = ((x ^ (i << 32)).wrapping_mul(0x2545_f491_4f6c_dd1d)
                    % u64::from(self.key_space)) as u32;
                emit.emit(key, x.wrapping_add(i) | 1);
            }
        }
    }

    fn combine(&self, acc: &mut u64, v: u64) {
        *acc = match self.fold {
            Fold::Sum => acc.wrapping_add(v),
            Fold::Min => (*acc).min(v),
            Fold::Max => (*acc).max(v),
            Fold::SaturatingMul => acc.saturating_mul(v),
        };
    }

    fn key_space(&self) -> Option<usize> {
        Some(self.key_space as usize)
    }

    fn key_index(&self, k: &u32) -> usize {
        *k as usize
    }
}

fn reference(job: &RandomJob, input: &[u64]) -> Vec<(u32, u64)> {
    let mut acc: std::collections::BTreeMap<u32, u64> = Default::default();
    let mut sink = |k: u32, v: u64| {
        use std::collections::btree_map::Entry;
        match acc.entry(k) {
            Entry::Vacant(e) => {
                e.insert(v);
            }
            Entry::Occupied(mut e) => job.combine(e.get_mut(), v),
        }
    };
    let mut emitter = Emitter::new(&mut sink);
    job.map(input, &mut emitter);
    acc.into_iter().collect()
}

fn fold_strategy() -> impl Strategy<Value = Fold> {
    prop_oneof![Just(Fold::Sum), Just(Fold::Min), Just(Fold::Max), Just(Fold::SaturatingMul)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_jobs_agree_across_runtimes(
        input in proptest::collection::vec(any::<u64>(), 0..3000),
        key_space in 1u32..300,
        fold in fold_strategy(),
        emits in 1u8..5,
        workers in 1usize..5,
        combiner_frac in 1usize..5,
        task_size in 1usize..500,
        batch in 1usize..64,
        container_hash in any::<bool>(),
    ) {
        let combiners = (workers * combiner_frac / 4).clamp(1, workers);
        let job = RandomJob { key_space, fold, emits };
        let cfg = RuntimeConfig::builder()
            .num_workers(workers)
            .num_combiners(combiners)
            .task_size(task_size)
            .queue_capacity(64)
            .batch_size(batch.min(64))
            .container(if container_hash { ContainerKind::Hash } else { ContainerKind::Array })
            .build()
            .unwrap();
        let expected = reference(&job, &input);
        let ramr = Backend::RamrStatic.engine(cfg.clone()).unwrap().submit(&job, &input).unwrap().output;
        let phoenix = Backend::Phoenix.engine(cfg).unwrap().submit(&job, &input).unwrap().output;
        prop_assert_eq!(&ramr.pairs, &expected);
        prop_assert_eq!(&phoenix.pairs, &expected);
    }
}
