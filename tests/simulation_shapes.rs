//! Cross-crate shape assertions: the modeled figures must reproduce the
//! paper's qualitative results end to end (synthetic suite included).

use mr_apps::inputs::{InputFlavor, Platform};
use mr_apps::AppKind;
use mr_synth::SynthSpec;
use mrsim::{simulate, RuntimeKind, SimConfig, SimJob};
use ramr_topology::MachineModel;

fn fig4_job(combine_intensity: u32) -> SimJob {
    SimJob {
        profile: SynthSpec::fig4(combine_intensity).profile(),
        input_elements: 20_000_000,
        unique_keys: mr_synth::SYNTH_KEY_SPACE as u64,
    }
}

fn ramr_at_ratio(job: &SimJob, ratio: usize) -> f64 {
    let mut cfg = SimConfig::ramr(MachineModel::haswell_server());
    let combiners = (cfg.total_threads / (ratio + 1)).max(1);
    cfg.combiners = combiners;
    cfg.mappers = cfg.total_threads - combiners;
    simulate(job, &cfg).total_ns()
}

#[test]
fn fig4_best_ratio_moves_from_three_to_one() {
    // Light combine: one combiner serves three mappers best.
    let light = fig4_job(2);
    assert!(ramr_at_ratio(&light, 3) < ramr_at_ratio(&light, 1));
    // Heavy combine: equal pools win.
    let heavy = fig4_job(400);
    assert!(ramr_at_ratio(&heavy, 1) < ramr_at_ratio(&heavy, 3));
    // Somewhere in between, ratio 2 is the best of the three.
    let mut crossover_seen = false;
    for intensity in [10u32, 20, 30, 50, 80, 120] {
        let j = fig4_job(intensity);
        let (r3, r2, r1) = (ramr_at_ratio(&j, 3), ramr_at_ratio(&j, 2), ramr_at_ratio(&j, 1));
        if r2 <= r3 && r2 <= r1 {
            crossover_seen = true;
        }
    }
    assert!(crossover_seen, "an intermediate intensity must prefer ratio 2");
}

#[test]
fn fig4_ramr_beats_phoenix_on_the_synthetic() {
    // CPU-intensive map + memory-intensive combine: the complementary
    // profile RAMR is built for.
    for intensity in [5u32, 50, 200] {
        let j = fig4_job(intensity);
        let phoenix = simulate(&j, &SimConfig::phoenix(MachineModel::haswell_server()));
        let best_ramr =
            [1usize, 2, 3].iter().map(|&r| ramr_at_ratio(&j, r)).fold(f64::INFINITY, f64::min);
        assert!(
            best_ramr < phoenix.total_ns(),
            "intensity {intensity}: RAMR {best_ramr:.3e} vs phoenix {:.3e}",
            phoenix.total_ns()
        );
    }
}

#[test]
fn fig8_fig9_shapes_hold_across_flavors() {
    for platform in [Platform::Haswell, Platform::XeonPhi] {
        for flavor in InputFlavor::ALL {
            let km = mr_bench_speedup(AppKind::Kmeans, platform, flavor);
            let hg = mr_bench_speedup(AppKind::Histogram, platform, flavor);
            assert!(km > 1.0, "KM wins on {platform} {flavor}: {km:.2}");
            assert!(hg < 1.0, "HG loses on {platform} {flavor}: {hg:.2}");
        }
    }
}

// Local copy of the bench helper (integration tests avoid depending on the
// bench crate).
fn mr_bench_speedup(app: AppKind, platform: Platform, flavor: InputFlavor) -> f64 {
    use mr_apps::inputs::InputSpec;
    use ramr_perfmodel::catalog;
    let machine = match platform {
        Platform::Haswell => MachineModel::haswell_server(),
        Platform::XeonPhi => MachineModel::xeon_phi(),
    };
    let spec = InputSpec::table1(app, platform, flavor);
    let job = SimJob {
        profile: catalog::default_profile(app),
        input_elements: spec.scaled_elements(1),
        unique_keys: match app {
            AppKind::Histogram => 768,
            AppKind::Kmeans => 64,
            _ => 1000,
        },
    };
    let phoenix = simulate(&job, &SimConfig::phoenix(machine.clone()));
    let mut ramr_cfg = SimConfig::ramr(machine);
    ramr_cfg.runtime = RuntimeKind::Ramr;
    let ramr = simulate(&job, &ramr_cfg);
    phoenix.total_ns() / ramr.total_ns()
}

#[test]
fn queue_capacity_5000_is_near_optimal() {
    // Paper SIII-A: "a maximum capacity of five thousand elements achieves
    // near-optimal (within 2%) performance across all test-cases".
    for app in AppKind::ALL {
        let job = SimJob {
            profile: ramr_perfmodel::catalog::default_profile(app),
            input_elements: 5_000_000,
            unique_keys: 10_000,
        };
        let time_at = |capacity: usize| {
            let mut cfg = SimConfig::ramr(MachineModel::haswell_server());
            cfg.queue_capacity = capacity;
            cfg.batch_size = cfg.batch_size.min(capacity);
            simulate(&job, &cfg).total_ns()
        };
        let at_5000 = time_at(5000);
        let best = [1000usize, 2000, 5000, 10_000, 20_000, 100_000]
            .iter()
            .map(|&c| time_at(c))
            .fold(f64::INFINITY, f64::min);
        assert!(
            at_5000 <= best * 1.05,
            "{app}: capacity 5000 must be within ~2% of optimal ({at_5000:.3e} vs {best:.3e})"
        );
    }
}
