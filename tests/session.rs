//! Session-reuse suite: persistent worker pools must behave, job after
//! job, exactly like freshly spawned ones.
//!
//! The hazards specific to pooling are state bleed (telemetry, fault
//! records, adaptive role assignments surviving into the next job) and
//! wedged pools (a failed job leaving a worker parked in a bad state).
//! Each test drives a `RamrSession` through a stream of jobs and checks
//! one of those hazards with exact assertions.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use mr_apps::WordCount;
use mr_core::{ContainerKind, RuntimeConfig};
use ramr::{Backend, JobScheduler, RamrSession};
use ramr_faultinject::{FaultKind, FaultPlan, FaultyJob};
use ramr_telemetry::FaultMetrics;

/// Lines per task; the fault fingerprint divides by this.
const TASK: usize = 32;

fn lines(n: usize, salt: usize) -> Vec<String> {
    (0..n).map(|i| format!("t{i} alpha beta w{} v{}", (i + salt) % 7, (i + salt) % 13)).collect()
}

/// Word counts of `input` with the tasks in `dropped` (by ordinal)
/// removed — the exact expected output of a (skip-poison) run.
fn reference(input: &[String], dropped: &[u64]) -> Vec<(ramr_containers::CompactKey, u64)> {
    let mut counts = BTreeMap::new();
    for (i, line) in input.iter().enumerate() {
        if dropped.contains(&((i / TASK) as u64)) {
            continue;
        }
        for word in line.split_ascii_whitespace() {
            *counts.entry(ramr_containers::CompactKey::ascii_lowercase(word)).or_insert(0u64) += 1;
        }
    }
    counts.into_iter().collect()
}

/// Task ordinal of a line: the leading `t<index>` token over [`TASK`].
#[allow(clippy::ptr_arg)]
fn ordinal_of(line: &String) -> u64 {
    let token = line.split_ascii_whitespace().next().expect("nonempty line");
    let index: u64 = token[1..].parse().expect("t<index> token");
    index / TASK as u64
}

fn config() -> RuntimeConfig {
    RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(TASK)
        .queue_capacity(256)
        .batch_size(16)
        .container(ContainerKind::Hash)
        .telemetry(true)
        .build()
        .unwrap()
}

fn poison(key: u64) -> FaultPlan {
    FaultPlan::with_faults(vec![FaultKind::PanicOnTask { key, fail_attempts: u32::MAX }])
}

#[test]
fn twenty_job_stream_is_exact_on_static_pools() {
    let mut session = RamrSession::<WordCount>::new(config()).unwrap();
    for round in 0..20 {
        let input = lines(200 + round * 8, round);
        let output = session.submit(&WordCount, &input).unwrap();
        assert_eq!(output.pairs, reference(&input, &[]), "round {round}");
    }
    assert_eq!(session.jobs_run(), 20);
}

#[test]
fn fault_records_do_not_bleed_into_the_next_job() {
    // Job 1 skips a poison task and records it; job 2 is healthy. A pooled
    // session must report job 2 with *empty* fault metrics and telemetry
    // that accounts for job 2's items alone — nothing carried over.
    let mut cfg = config();
    cfg.max_task_retries = 1;
    cfg.skip_poison_tasks = true;
    let mut session = RamrSession::<FaultyJob<WordCount>>::new(cfg).unwrap();

    let input = lines(400, 0);
    let faulty = FaultyJob::new(WordCount, poison(3), ordinal_of);
    let (out, report) = session.submit_with_report(&faulty, &input).unwrap();
    assert_eq!(out.pairs, reference(&input, &[3]));
    assert_eq!(report.faults.skipped.len(), 1, "job 1 must record its poison task");
    assert!(report.faults.retries > 0, "job 1 must record its retries");

    let healthy = FaultyJob::new(WordCount, FaultPlan::default(), ordinal_of);
    let (out, report) = session.submit_with_report(&healthy, &input).unwrap();
    assert_eq!(out.pairs, reference(&input, &[]));
    assert_eq!(report.faults, FaultMetrics::default(), "job 1 faults leaked into job 2");
    let mapped: u64 = report.mapper_telemetry.iter().map(|t| t.items).sum();
    assert_eq!(mapped, out.stats.emitted, "job 2 telemetry must count job 2's items alone");
}

#[test]
fn a_failed_job_leaves_the_session_usable() {
    // Without skip-poison the poisoned job aborts with the worker panic;
    // the pools must come back parked and healthy, and the next submit
    // must produce the exact output. Exercised on both RAMR backends.
    for backend in [Backend::RamrStatic, Backend::RamrAdaptive] {
        let mut cfg = config();
        cfg.max_task_retries = 1;
        cfg.skip_poison_tasks = false;
        if backend == Backend::RamrAdaptive {
            cfg.adaptive = true;
            cfg.adapt_interval = Duration::from_millis(2);
        }
        let mut session = RamrSession::<FaultyJob<WordCount>>::new(cfg).unwrap();
        let input = lines(400, 1);
        for round in 0..2 {
            let faulty = FaultyJob::new(WordCount, poison(3), ordinal_of);
            let err = session.submit(&faulty, &input).unwrap_err();
            assert!(
                err.to_string().contains("panic"),
                "{backend} round {round}: expected the injected panic, got {err}"
            );
            let healthy = FaultyJob::new(WordCount, FaultPlan::default(), ordinal_of);
            let output = session.submit(&healthy, &input).unwrap();
            assert_eq!(output.pairs, reference(&input, &[]), "{backend} round {round}");
        }
    }
}

#[test]
fn a_skipped_poison_job_leaves_the_session_usable() {
    // The skip-poison path exercises different machinery (the task is
    // dropped, the run succeeds) — alternate poisoned and healthy jobs
    // and require exact outputs for both throughout.
    let mut cfg = config();
    cfg.max_task_retries = 1;
    cfg.skip_poison_tasks = true;
    let mut session = RamrSession::<FaultyJob<WordCount>>::new(cfg).unwrap();
    let input = lines(400, 2);
    for round in 0..3 {
        let faulty = FaultyJob::new(WordCount, poison(round as u64 % 4), ordinal_of);
        let output = session.submit(&faulty, &input).unwrap();
        assert_eq!(output.pairs, reference(&input, &[round as u64 % 4]), "round {round}");
        let healthy = FaultyJob::new(WordCount, FaultPlan::default(), ordinal_of);
        let output = session.submit(&healthy, &input).unwrap();
        assert_eq!(output.pairs, reference(&input, &[]), "round {round}");
    }
}

#[test]
fn adaptive_role_changes_do_not_leak_into_the_next_job() {
    // The controller may flip flex threads between mapping and combining
    // mid-job. Every job must nevertheless *start* from the configured
    // split: if a job records adaptation events, the first one must be a
    // single step away from `num_combiners`, not wherever the previous
    // job ended up.
    let mut cfg = config();
    cfg.adaptive = true;
    cfg.adapt_interval = Duration::from_micros(200);
    let configured = cfg.num_combiners;
    let mut session = RamrSession::<WordCount>::new(cfg).unwrap();
    let input = lines(4_000, 3);
    let expected = reference(&input, &[]);
    for round in 0..6 {
        let (output, report) = session.submit_with_report(&WordCount, &input).unwrap();
        assert_eq!(output.pairs, expected, "round {round}");
        if let Some(first) = report.adaptation.first() {
            let step = (first.active_combiners as i64 - configured as i64).unsigned_abs();
            assert!(
                step <= 1,
                "round {round}: first adaptation moved to {} combiners; a fresh job \
                 must start from the configured {configured}",
                first.active_combiners
            );
        }
    }
    assert_eq!(session.jobs_run(), 6);
}

#[test]
fn rapid_static_epochs_never_lose_pairs_to_stale_queue_state() {
    // Regression: the static mapper worker used to call `finish` a second
    // time after `mapper_loop`'s own close. When its combiner had already
    // observed closed+empty, drained and *reopened* the queue for the next
    // epoch, the redundant close left a stale closed flag behind — and the
    // next epoch's combiner could exit early and silently drop pairs.
    // Tiny queues and a rapid stream of small jobs maximize the chance of
    // hitting that window; every round must produce the exact output.
    let cfg = RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(8)
        .queue_capacity(16)
        .batch_size(4)
        .container(ContainerKind::Hash)
        .build()
        .unwrap();
    let mut session = RamrSession::<WordCount>::new(cfg).unwrap();
    for round in 0..40 {
        let input = lines(96, round);
        let expected = reference(&input, &[]);
        let output = session.submit(&WordCount, &input).unwrap();
        assert_eq!(output.pairs, expected, "round {round}: pairs lost or duplicated");
    }
    assert_eq!(session.jobs_run(), 40);
}

#[test]
fn scheduled_tenants_share_the_pool_without_fault_bleed() {
    // The pooling hazards above, but with the session driven through the
    // scheduler by two tenants: the victim's skipped poison task must show
    // up in *its* reports alone — the bystander's jobs run on the very
    // same worker pool and must report empty fault metrics and exact
    // output, job after job. Exercised on both RAMR backends.
    for backend in [Backend::RamrStatic, Backend::RamrAdaptive] {
        let mut cfg = config();
        cfg.max_task_retries = 1;
        cfg.skip_poison_tasks = true;
        if backend == Backend::RamrAdaptive {
            cfg.adaptive = true;
            cfg.adapt_interval = Duration::from_millis(2);
        }
        let sched = JobScheduler::<FaultyJob<WordCount>>::new(backend, cfg).unwrap();
        let victim = sched.client("victim");
        let bystander = sched.client("bystander");
        let input = Arc::new(lines(400, 4));
        for round in 0..3 {
            let faulty = FaultyJob::new(WordCount, poison(3), ordinal_of);
            let done = victim.submit(Arc::new(faulty), Arc::clone(&input)).unwrap();
            let done = done.wait().unwrap();
            assert_eq!(done.output.pairs, reference(&input, &[3]), "{backend} round {round}");
            assert_eq!(done.report.faults.skipped.len(), 1, "{backend} round {round}");

            let healthy = FaultyJob::new(WordCount, FaultPlan::default(), ordinal_of);
            let done = bystander.submit(Arc::new(healthy), Arc::clone(&input)).unwrap();
            let done = done.wait().unwrap();
            assert_eq!(done.output.pairs, reference(&input, &[]), "{backend} round {round}");
            assert_eq!(
                done.report.faults,
                FaultMetrics::default(),
                "{backend} round {round}: the victim's faults bled into the bystander"
            );
        }
        let stats = sched.tenant_stats();
        let victim_stats = stats.iter().find(|s| s.tenant == "victim").unwrap();
        let bystander_stats = stats.iter().find(|s| s.tenant == "bystander").unwrap();
        assert_eq!(victim_stats.completed, 3, "{backend}: skip-poison runs complete");
        assert_eq!(bystander_stats.failed, 0, "{backend}");
    }
}

#[test]
fn adaptive_backend_rejects_disabled_telemetry_like_the_direct_path() {
    // `Backend::RamrAdaptive` used to silently force `telemetry = true`,
    // so an explicit opt-out was a no-op through the engine front door but
    // an `InvalidConfig` through the direct `RamrRuntime` path. Both paths
    // must now reject the contradiction with the same validation error.
    let mut cfg = config();
    cfg.telemetry = false;

    let direct = {
        let mut cfg = cfg.clone();
        cfg.adaptive = true;
        ramr::RamrRuntime::new(cfg).unwrap_err()
    };
    assert!(direct.to_string().contains("telemetry"), "direct path: {direct}");

    let engine = Backend::RamrAdaptive.engine(cfg.clone()).unwrap_err();
    assert_eq!(engine.to_string(), direct.to_string(), "engine path must match direct path");

    let session = Backend::RamrAdaptive.session::<WordCount>(cfg).unwrap_err();
    assert_eq!(session.to_string(), direct.to_string(), "session path must match direct path");
}
