//! Pipeline suite: multi-stage chains must be nothing more than the serial
//! job sequence — byte-identical output on every backend — with exact
//! stage attribution on failure, a hard stage budget, and the adaptive
//! seed actually carried across stage boundaries.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mr_apps::inputs::{km_input, wc_input, InputFlavor, InputSpec, Platform};
use mr_apps::{AppKind, InvertedIndex, KmeansState, TopKDf, WordCount};
use mr_core::{ContainerKind, RuntimeConfig, RuntimeError};
use ramr::{AdaptiveSeed, Backend, Engine, JobScheduler, Pipeline, StagePlan};
use ramr_faultinject::{FaultKind, FaultPlan, FaultyJob};

fn config() -> RuntimeConfig {
    RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(64)
        .queue_capacity(256)
        .batch_size(32)
        .container(ContainerKind::Hash)
        .build()
        .unwrap()
}

fn docs(n: u64) -> Vec<(u32, String)> {
    let spec = InputSpec::table1(AppKind::WordCount, Platform::Haswell, InputFlavor::Small);
    wc_input(&spec, n).into_iter().enumerate().map(|(i, l)| (i as u32, l)).collect()
}

#[test]
fn chained_pipeline_is_byte_identical_to_serial_on_every_backend() {
    // The zero-copy handoff must be invisible: on each backend, the
    // two-stage chain equals running stage one, feeding its pairs to stage
    // two by hand — and all backends agree byte-for-byte (integer-valued
    // jobs with associative deterministic folds).
    let input = docs(2_000);
    let topk = TopKDf { k: 12 };
    let mut reference = None;
    for backend in Backend::ALL {
        let engine = backend.engine(config()).unwrap();
        let chained =
            engine.pipeline(Pipeline::stage(InvertedIndex).then_pairs(topk), &input).unwrap();
        assert_eq!(chained.report.stages.len(), 2, "{backend}");
        assert_eq!(chained.report.stages[0].job, "inverted-index", "{backend}");
        assert_eq!(chained.report.stages[1].job, "top-k-df", "{backend}");
        assert!(chained.report.converged, "{backend}: no iterate loop ran");
        assert!(chained.report.faults_clean(), "{backend}");

        let index = engine.submit(&InvertedIndex, &input).unwrap().output;
        assert_eq!(
            chained.report.stages[1].input_items,
            index.pairs.len(),
            "{backend}: stage 2 must receive exactly stage 1's pairs"
        );
        let serial = engine.submit(&topk, &index.pairs).unwrap().output;
        assert_eq!(chained.output.pairs, serial.pairs, "{backend}: chain != serial");

        match &reference {
            None => reference = Some(chained.output.pairs),
            Some(prev) => {
                assert_eq!(&chained.output.pairs, prev, "{backend} diverges from first backend");
            }
        }
    }
}

#[test]
fn kmeans_iterate_matches_the_manual_serial_loop() {
    // The iterate combinator on one warm session must walk the exact same
    // Lloyd trajectory as a hand-written submit loop: same round count,
    // same cluster populations, centroid sums within float tolerance.
    let spec = InputSpec::table1(AppKind::Kmeans, Platform::Haswell, InputFlavor::Small);
    let points = km_input(&spec, 2_000);
    let cap = 12;

    // Manual serial loop, fresh engine per round (the cold baseline).
    let engine = Backend::RamrStatic.engine(config()).unwrap();
    let mut manual = KmeansState::seeded(&points, 8);
    let mut manual_rounds = 0;
    let manual_out = loop {
        manual_rounds += 1;
        let out = engine.submit(&manual.job(), &points).unwrap().output;
        let movement = manual.step(&out.pairs);
        if movement <= 1e-6 || manual_rounds >= cap {
            break out;
        }
    };

    // The same loop as an iterate pipeline over one pooled session.
    let mut state = KmeansState::seeded(&points, 8);
    let plan = Pipeline::iterate(state.job(), move |job, out| {
        let movement = state.step(&out.pairs);
        *job = state.job();
        movement
    })
    .rounds(cap);
    let outcome = engine.pipeline(plan, &points).unwrap();

    assert_eq!(outcome.report.stages.len(), manual_rounds, "round counts differ");
    assert_eq!(outcome.output.len(), manual_out.len(), "cluster sets differ");
    for ((ka, va), (kb, vb)) in outcome.output.iter().zip(manual_out.iter()) {
        assert_eq!(ka, kb);
        assert_eq!(va.count, vb.count, "cluster {ka} population differs");
        for d in 0..mr_apps::DIM {
            let scale = va.sum[d].abs().max(1.0);
            assert!((va.sum[d] - vb.sum[d]).abs() / scale < 1e-9, "cluster {ka} dim {d}");
        }
    }
    // Rounds are stages: each one is numbered and carries its residual.
    for (i, stage) in outcome.report.stages.iter().enumerate() {
        assert_eq!(stage.round, Some(i + 1));
        assert!(stage.residual.is_some(), "round {} recorded no residual", i + 1);
    }
}

#[test]
fn uncapped_iterate_stops_at_the_rounds_cap_unconverged() {
    let input: Vec<(u32, String)> = docs(4_000);
    let plan =
        Pipeline::iterate(InvertedIndex, |_job, _out| f64::INFINITY /* never converges */)
            .rounds(3);
    let outcome = Backend::RamrStatic.engine(config()).unwrap().pipeline(plan, &input).unwrap();
    assert_eq!(outcome.report.stages.len(), 3);
    assert!(!outcome.report.converged, "cap hit must be reported, not silently dropped");
}

#[test]
fn stage_budget_is_enforced() {
    let mut cfg = config();
    cfg.pipeline_max_stages = 1;
    let input = docs(200);
    let err = Backend::RamrStatic
        .engine(cfg)
        .unwrap()
        .pipeline(Pipeline::stage(InvertedIndex).then_pairs(TopKDf { k: 4 }), &input)
        .unwrap_err();
    match err {
        RuntimeError::InvalidConfig(msg) => {
            assert!(msg.contains("RAMR_PIPELINE_MAX_STAGES"), "budget error names the knob: {msg}")
        }
        other => panic!("expected InvalidConfig, got {other}"),
    }
}

/// Task ordinal of a word-count line (leading `t<index>` token / 16).
#[allow(clippy::ptr_arg)]
fn ordinal_of(line: &String) -> u64 {
    let token = line.split_ascii_whitespace().next().expect("nonempty line");
    token[1..].parse::<u64>().expect("t<index> token") / 16
}

#[test]
fn a_poisoned_second_stage_fails_once_with_stage_attribution() {
    // Stage 1 is healthy; stage 2 carries a permanent poison task with
    // retries off. The pipeline must fail exactly once (stage 2 submits a
    // single time) and the error must name stage 2 and the failing job,
    // wrapping the real worker panic as its source.
    let lines: Vec<String> =
        (0..256).map(|i| format!("t{i} alpha beta w{} v{}", i % 7, i % 13)).collect();
    let poisoned = || {
        FaultyJob::new(
            WordCount,
            FaultPlan::with_faults(vec![FaultKind::PanicOnTask {
                key: 1,
                fail_attempts: u32::MAX,
            }]),
            ordinal_of,
        )
    };
    let mut cfg = config();
    cfg.task_size = 16;
    for backend in Backend::ALL {
        let stage2_runs = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&stage2_runs);
        let healthy = FaultyJob::new(WordCount, FaultPlan::default(), ordinal_of);
        let plan = Pipeline::stage(healthy).then(poisoned(), move |out| {
            counter.fetch_add(1, Ordering::SeqCst);
            // Rebuild lines from stage 1's words so the poison ordinal of
            // stage 2 is independent of stage 1's counts.
            out.pairs.iter().enumerate().map(|(i, (w, _))| format!("t{i} {}", w.as_str())).collect()
        });
        let err = backend.engine(cfg.clone()).unwrap().pipeline(plan, &lines).unwrap_err();
        assert_eq!(stage2_runs.load(Ordering::SeqCst), 1, "{backend}: stage 2 must run once");
        match err {
            RuntimeError::StageFailed { stage, job, source } => {
                assert_eq!(stage, 2, "{backend}: wrong stage blamed");
                assert_eq!(job, "word-count", "{backend}");
                assert!(
                    matches!(*source, RuntimeError::WorkerPanic(_)),
                    "{backend}: source must be the worker panic, got {source}"
                );
            }
            other => panic!("{backend}: expected StageFailed, got {other}"),
        }
    }
}

#[test]
fn the_adaptive_seed_carries_across_stage_boundaries() {
    // On the adaptive backend, stage 2's tuner must start from stage 1's
    // final split instead of the configured default: its StageReport
    // records the applied seed, and that seed equals the one derived from
    // stage 1's trace. Large stage-1 input and a fast controller interval
    // guarantee the trace is non-empty.
    let input = docs(60_000);
    let mut cfg = config();
    cfg.adaptive = true;
    cfg.telemetry = true;
    cfg.adapt_interval = Duration::from_micros(200);
    let engine = Backend::RamrAdaptive.engine(cfg.clone()).unwrap();
    let outcome = engine
        .pipeline(Pipeline::stage(InvertedIndex).then_pairs(TopKDf { k: 8 }), &input)
        .unwrap();
    let stages = &outcome.report.stages;
    assert_eq!(stages.len(), 2);
    assert!(stages[0].seeded.is_none(), "stage 1 has nothing to inherit");
    assert!(
        !stages[0].report.adaptation.is_empty(),
        "stage 1 must have ticked; shrink adapt_interval if this fires"
    );
    let expected = AdaptiveSeed::from_trace(&cfg, &stages[0].report.adaptation)
        .expect("non-empty trace derives a seed");
    assert_eq!(
        stages[1].seeded,
        Some(expected),
        "stage 2 must start from stage 1's final operating point"
    );
}

#[test]
fn scheduler_chains_run_as_one_accounted_unit() {
    // A 3-round chain through the scheduler: one ticket, one queue slot,
    // rounds counted on the CompletedJob, output equal to the last round's
    // serial result. The continuation reuses the same job, so the final
    // output must equal a plain submit.
    let lines: Vec<String> =
        (0..400).map(|i| format!("t{i} alpha beta w{} v{}", i % 7, i % 13)).collect();
    for backend in Backend::ALL {
        let sched = JobScheduler::<WordCount>::new(backend, config()).unwrap();
        let client = sched.client("chain");
        let ticket = client
            .submit_chain(Arc::new(WordCount), Arc::new(lines.clone()), |round, _out| {
                (round < 3).then(|| Arc::new(WordCount))
            })
            .unwrap();
        let done = ticket.wait().unwrap();
        assert_eq!(done.rounds, 3, "{backend}: three epochs consumed");
        let serial = backend.engine(config()).unwrap().submit(&WordCount, &lines).unwrap().output;
        assert_eq!(done.output.pairs, serial.pairs, "{backend}");

        let stats = sched.tenant_stats();
        let chain_stats = stats.iter().find(|s| s.tenant == "chain").unwrap();
        assert_eq!(chain_stats.completed, 1, "{backend}: a chain is ONE completed job");
        assert_eq!(chain_stats.failed, 0, "{backend}");
    }
}

#[test]
fn scheduler_chains_respect_the_stage_budget() {
    let lines: Vec<String> = (0..64).map(|i| format!("t{i} alpha beta")).collect();
    let mut cfg = config();
    cfg.pipeline_max_stages = 2;
    let sched = JobScheduler::<WordCount>::new(Backend::RamrStatic, cfg).unwrap();
    let client = sched.client("runaway");
    let ticket = client
        .submit_chain(Arc::new(WordCount), Arc::new(lines), |_round, _out| {
            Some(Arc::new(WordCount))
        })
        .unwrap();
    let err = ticket.wait().unwrap_err();
    assert!(
        err.to_string().contains("RAMR_PIPELINE_MAX_STAGES"),
        "budget error names the knob: {err}"
    );
}
