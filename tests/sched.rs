//! Scheduler suite: many concurrent clients over one shared session.
//!
//! The hazards specific to the scheduler layer are ordering (a policy must
//! dispatch exactly the jobs it was given, once each), isolation (one
//! tenant's failure must not leak into another's output or wedge the
//! queue), and admission control (quotas and the bounded queue must shed
//! or delay — never deadlock, never drop silently). Each test drives a
//! `JobScheduler` from multiple threads and checks one hazard with exact
//! assertions; outputs are always compared byte-for-byte against a serial
//! baseline.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mr_apps::WordCount;
use mr_core::{ContainerKind, RuntimeConfig, SchedPolicy};
use ramr::sched::SchedError;
use ramr::{Backend, Engine, JobScheduler};
use ramr_faultinject::{FaultKind, FaultPlan, FaultyJob};

/// Lines per task; the fault fingerprint divides by this.
const TASK: usize = 32;

fn lines(n: usize, salt: usize) -> Vec<String> {
    (0..n).map(|i| format!("t{i} alpha beta w{} v{}", (i + salt) % 7, (i + salt) % 13)).collect()
}

/// Word counts of `input` — the exact expected output of a healthy run.
fn reference(input: &[String]) -> Vec<(ramr_containers::CompactKey, u64)> {
    let mut counts = BTreeMap::new();
    for line in input {
        for word in line.split_ascii_whitespace() {
            *counts.entry(ramr_containers::CompactKey::ascii_lowercase(word)).or_insert(0u64) += 1;
        }
    }
    counts.into_iter().collect()
}

/// Task ordinal of a line: the leading `t<index>` token over [`TASK`].
#[allow(clippy::ptr_arg)]
fn ordinal_of(line: &String) -> u64 {
    let token = line.split_ascii_whitespace().next().expect("nonempty line");
    let index: u64 = token[1..].parse().expect("t<index> token");
    index / TASK as u64
}

fn config() -> RuntimeConfig {
    RuntimeConfig::builder()
        .num_workers(4)
        .num_combiners(2)
        .task_size(TASK)
        .queue_capacity(256)
        .batch_size(16)
        .container(ContainerKind::Hash)
        .telemetry(true)
        .build()
        .unwrap()
}

fn healthy() -> FaultyJob<WordCount> {
    FaultyJob::new(WordCount, FaultPlan::default(), ordinal_of)
}

fn poisoned(key: u64) -> FaultyJob<WordCount> {
    let plan =
        FaultPlan::with_faults(vec![FaultKind::PanicOnTask { key, fail_attempts: u32::MAX }]);
    FaultyJob::new(WordCount, plan, ordinal_of)
}

/// Runs `f` on a helper thread and panics if it outruns `secs` — a
/// scheduler regression must fail the suite, not hang it.
fn with_deadline<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(value) => {
            let _ = handle.join();
            value
        }
        Err(_) => panic!("scheduler run exceeded the {secs}s deadline"),
    }
}

/// The acceptance-criteria differential: N >= 4 concurrent clients
/// submitting mixed jobs through one shared session must produce outputs
/// byte-identical to running the same jobs serially — on every backend.
#[test]
fn concurrent_clients_match_the_serial_baseline_across_backends() {
    const CLIENTS: usize = 4;
    const JOBS_PER_CLIENT: usize = 6;
    for backend in Backend::ALL {
        with_deadline(120, move || {
            let sched = JobScheduler::<WordCount>::new(backend, config()).unwrap();
            let mut handles = Vec::new();
            for c in 0..CLIENTS {
                let client = sched.client(&format!("tenant-{c}"));
                handles.push(thread::spawn(move || {
                    let mut got = Vec::new();
                    for j in 0..JOBS_PER_CLIENT {
                        // Mixed jobs: every (client, round) pair gets its
                        // own input, so misrouted or cross-bled output
                        // cannot accidentally compare equal.
                        let salt = c * 100 + j;
                        let input = Arc::new(lines(150 + j * TASK, salt));
                        let ticket = client.submit(Arc::new(WordCount), input).unwrap();
                        let done = ticket.wait().unwrap();
                        got.push((salt, done.output.pairs));
                    }
                    got
                }));
            }
            for handle in handles {
                for (salt, pairs) in handle.join().unwrap() {
                    // The serial baseline: the same job, fresh and alone.
                    let input = lines(150 + (salt % 100) * TASK, salt);
                    let serial = backend
                        .engine(config())
                        .unwrap()
                        .submit(&WordCount, &input)
                        .unwrap()
                        .output;
                    assert_eq!(pairs, serial.pairs, "{backend} salt={salt}");
                    assert_eq!(pairs, reference(&input), "{backend} salt={salt}");
                }
            }
            let stats = sched.tenant_stats();
            assert_eq!(stats.len(), CLIENTS, "{backend}: every tenant accounted");
            for s in &stats {
                assert_eq!(s.completed, JOBS_PER_CLIENT as u64, "{backend} {}", s.tenant);
                assert_eq!(s.failed, 0, "{backend} {}", s.tenant);
                assert_eq!(s.shed, 0, "{backend} {}", s.tenant);
            }
        });
    }
}

/// The same differential under the fair-share policy with skewed weights:
/// fairness reorders dispatch, but must never change any job's output.
#[test]
fn fair_share_reorders_dispatch_but_never_output() {
    with_deadline(120, || {
        let mut cfg = config();
        cfg.sched_policy = "fair:flood=1,light=8".parse::<SchedPolicy>().unwrap();
        let sched = JobScheduler::<WordCount>::new(Backend::RamrStatic, cfg).unwrap();
        let mut handles = Vec::new();
        for (tenant, jobs) in [("flood", 12usize), ("light", 3), ("extra", 3), ("more", 3)] {
            let client = sched.client(tenant);
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                for j in 0..jobs {
                    let input = Arc::new(lines(120, j));
                    let ticket = client.submit(Arc::new(WordCount), Arc::clone(&input)).unwrap();
                    got.push((input, ticket));
                }
                // Redeem after submitting everything, so the queue really
                // holds competing tenants at once.
                got.into_iter()
                    .map(|(input, t)| (input, t.wait().unwrap().output.pairs))
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            for (input, pairs) in handle.join().unwrap() {
                assert_eq!(pairs, reference(&input));
            }
        }
        let stats = sched.tenant_stats();
        let flood = stats.iter().find(|s| s.tenant == "flood").unwrap();
        let light = stats.iter().find(|s| s.tenant == "light").unwrap();
        assert_eq!((flood.weight, light.weight), (1, 8), "weights come from the policy");
        assert_eq!(flood.completed, 12);
        assert_eq!(light.completed, 3);
    });
}

/// A panicking job fails only its own tenant's ticket; concurrent submits
/// from other clients still complete with exact outputs, and the queue
/// keeps flowing afterwards — on every backend.
#[test]
fn a_failed_tenant_never_wedges_the_queue_across_backends() {
    for backend in Backend::ALL {
        with_deadline(120, move || {
            let sched = JobScheduler::<FaultyJob<WordCount>>::new(backend, config()).unwrap();
            let victim = sched.client("victim");
            let mut handles = Vec::new();
            for c in 0..3 {
                let client = sched.client(&format!("bystander-{c}"));
                handles.push(thread::spawn(move || {
                    let mut got = Vec::new();
                    for j in 0..4 {
                        let input = Arc::new(lines(150, c * 10 + j));
                        let ticket =
                            client.submit(Arc::new(healthy()), Arc::clone(&input)).unwrap();
                        got.push((input, ticket.wait().unwrap().output.pairs));
                    }
                    got
                }));
            }
            // The victim interleaves poisoned jobs with the bystanders.
            for round in 0..3 {
                let input = Arc::new(lines(150, round));
                let err = victim.submit(Arc::new(poisoned(1)), input).unwrap().wait().unwrap_err();
                assert!(
                    matches!(&err, SchedError::Job(e) if e.to_string().contains("panic")),
                    "{backend} round {round}: expected the injected panic, got {err}"
                );
            }
            for handle in handles {
                for (input, pairs) in handle.join().unwrap() {
                    assert_eq!(pairs, reference(&input), "{backend}: bystander output bled");
                }
            }
            // And the session is still usable for the failed tenant too.
            let input = Arc::new(lines(150, 99));
            let done = victim.submit(Arc::new(healthy()), Arc::clone(&input)).unwrap();
            assert_eq!(done.wait().unwrap().output.pairs, reference(&input), "{backend}");
            let stats = sched.tenant_stats();
            let victim_stats = stats.iter().find(|s| s.tenant == "victim").unwrap();
            assert_eq!(victim_stats.failed, 3, "{backend}");
            assert_eq!(victim_stats.completed, 1, "{backend}");
        });
    }
}

/// The per-tenant quota sheds `try_submit` deterministically: with quota 1
/// and one job parked in the queue behind a slow epoch, the second
/// `try_submit` from the same tenant must be refused and counted.
#[test]
fn quota_sheds_try_submit_but_other_tenants_proceed() {
    with_deadline(60, || {
        let mut cfg = config();
        cfg.sched_quota = 1;
        let sched = JobScheduler::<FaultyJob<WordCount>>::new(Backend::RamrStatic, cfg).unwrap();
        // Park the dispatcher on a slow job (every task dawdles 20 ms) so
        // admission decisions happen while work is provably in flight.
        let slow_plan = FaultPlan::with_faults(
            (0..5).map(|k| FaultKind::DelayTask { key: k, micros: 20_000 }).collect(),
        );
        let slow = FaultyJob::new(WordCount, slow_plan, ordinal_of);
        let input = Arc::new(lines(150, 0));
        let a = sched.client("a");
        let first = a.submit(Arc::new(slow), Arc::clone(&input)).unwrap();

        // Same tenant, quota already held by the in-flight job.
        let err = a.try_submit(Arc::new(healthy()), Arc::clone(&input)).unwrap_err();
        assert!(
            matches!(&err, SchedError::QuotaExceeded { tenant, quota: 1 } if tenant == "a"),
            "expected the quota refusal, got {err}"
        );

        // A different tenant has its own quota and sails through.
        let b = sched.client("b");
        let second = b.try_submit(Arc::new(healthy()), Arc::clone(&input)).unwrap();
        assert_eq!(second.wait().unwrap().output.pairs, reference(&input));
        assert_eq!(first.wait().unwrap().output.pairs, reference(&input));

        let stats = sched.tenant_stats();
        let a_stats = stats.iter().find(|s| s.tenant == "a").unwrap();
        assert_eq!(a_stats.shed, 1, "the refusal must be recorded");
        assert_eq!(a_stats.completed, 1);
    });
}

/// After a watchdog-cancelled epoch the scheduler is saturated: it sheds
/// `try_submit` until an epoch completes cleanly, then admits again.
#[test]
fn watchdog_saturation_sheds_until_an_epoch_completes_cleanly() {
    with_deadline(60, || {
        let mut cfg = config();
        cfg.watchdog = Some(Duration::from_millis(200));
        let sched = JobScheduler::<FaultyJob<WordCount>>::new(Backend::RamrStatic, cfg).unwrap();
        let client = sched.client("a");
        let input = Arc::new(lines(150, 0));

        let hung_plan = FaultPlan::with_faults(vec![FaultKind::HangOnTask { key: 1 }]);
        let hung = FaultyJob::new(WordCount, hung_plan, ordinal_of);
        let err = client.submit(Arc::new(hung), Arc::clone(&input)).unwrap().wait().unwrap_err();
        assert!(
            matches!(&err, SchedError::Job(mr_core::RuntimeError::Stalled { .. })),
            "expected the watchdog trip, got {err}"
        );

        // Saturated: non-blocking admission sheds.
        let err = client.try_submit(Arc::new(healthy()), Arc::clone(&input)).unwrap_err();
        assert!(matches!(err, SchedError::Saturated), "got {err}");

        // A blocking submit is delayed-not-shed; its clean completion
        // clears the saturation.
        let done = client.submit(Arc::new(healthy()), Arc::clone(&input)).unwrap();
        assert_eq!(done.wait().unwrap().output.pairs, reference(&input));
        let again = client.try_submit(Arc::new(healthy()), Arc::clone(&input)).unwrap();
        assert_eq!(again.wait().unwrap().output.pairs, reference(&input));
    });
}

/// Dropping the scheduler mid-stream fulfils still-queued tickets with
/// `Shutdown` instead of leaving their waiters parked forever.
#[test]
fn shutdown_fulfils_queued_tickets() {
    with_deadline(60, || {
        let sched =
            JobScheduler::<FaultyJob<WordCount>>::new(Backend::RamrStatic, config()).unwrap();
        let client = sched.client("a");
        let input = Arc::new(lines(150, 0));
        // Every task of the running job dawdles, holding the dispatcher in
        // the epoch while the second job is still queued behind it.
        let slow_plan = FaultPlan::with_faults(
            (0..5).map(|k| FaultKind::DelayTask { key: k, micros: 30_000 }).collect(),
        );
        let slow = FaultyJob::new(WordCount, slow_plan, ordinal_of);
        let running = client.submit(Arc::new(slow), Arc::clone(&input)).unwrap();
        let queued = client.submit(Arc::new(healthy()), Arc::clone(&input)).unwrap();
        drop(sched);
        // The shutdown contract: a job the dispatcher started runs to
        // completion; a still-queued ticket is fulfilled with `Shutdown`.
        // Which side of that line each job lands on depends on how far
        // the dispatcher got before `drop` — on a loaded machine it may
        // not have dequeued even the first job, or may have finished the
        // slow epoch and legally started the second. Every ticket must
        // resolve either way; none may be left parked (the deadline
        // around this closure catches that).
        let resolve = |ticket: ramr::JobTicket<FaultyJob<WordCount>>| match ticket.wait() {
            Ok(done) => {
                assert_eq!(done.output.pairs, reference(&input));
                true
            }
            Err(SchedError::Shutdown) => false,
            Err(other) => panic!("ticket resolved oddly: {other}"),
        };
        let ran_first = resolve(running);
        let ran_second = resolve(queued);
        // FIFO: the second job can only have run if the first did too.
        assert!(ran_first || !ran_second, "queued job ran but the earlier one was shed");
    });
}

/// Stress: many clients, tiny queue, mixed healthy/poisoned jobs, both
/// policies — every ticket resolves, every output is exact, nothing
/// deadlocks. This is the CI `sched-stress` entry point.
#[test]
fn concurrent_submit_stress_resolves_every_ticket() {
    for policy in ["fifo", "fair:t0=4,t1=1"] {
        with_deadline(180, move || {
            let mut cfg = config();
            cfg.sched_queue = 4; // tiny: force delay paths constantly
            cfg.sched_policy = policy.parse::<SchedPolicy>().unwrap();
            let sched =
                JobScheduler::<FaultyJob<WordCount>>::new(Backend::RamrStatic, cfg).unwrap();
            let mut handles = Vec::new();
            for c in 0..6usize {
                let client = sched.client(&format!("t{c}"));
                handles.push(thread::spawn(move || {
                    let mut outcomes = (0u64, 0u64);
                    for j in 0..8usize {
                        let input = Arc::new(lines(120, c + j));
                        // Every third job of half the tenants is poisoned.
                        let poison = c % 2 == 0 && j % 3 == 2;
                        let job = if poison { Arc::new(poisoned(0)) } else { Arc::new(healthy()) };
                        let ticket = client.submit(job, Arc::clone(&input)).unwrap();
                        match ticket.wait() {
                            Ok(done) => {
                                assert_eq!(done.output.pairs, reference(&input), "t{c} job {j}");
                                assert!(!poison, "t{c} job {j}: poisoned job succeeded");
                                outcomes.0 += 1;
                            }
                            Err(SchedError::Job(e)) => {
                                assert!(poison, "t{c} job {j}: healthy job failed: {e}");
                                outcomes.1 += 1;
                            }
                            Err(other) => panic!("t{c} job {j}: unexpected {other}"),
                        }
                    }
                    outcomes
                }));
            }
            let mut completed = 0u64;
            let mut failed = 0u64;
            for handle in handles {
                let (ok, bad) = handle.join().unwrap();
                completed += ok;
                failed += bad;
            }
            assert_eq!(completed + failed, 48, "{policy}: every ticket resolved");
            let stats = sched.tenant_stats();
            assert_eq!(stats.iter().map(|s| s.completed).sum::<u64>(), completed, "{policy}");
            assert_eq!(stats.iter().map(|s| s.failed).sum::<u64>(), failed, "{policy}");
        });
    }
}
