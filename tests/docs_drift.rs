//! Docs-drift guard: the documented `RAMR_*` tuning surface must match the
//! one `RuntimeConfig::from_env` actually reads, in both directions.
//!
//! README.md's knob table and TUNING.md's cookbook each list every env var;
//! `crates/mr-core/src/config.rs` is the source of truth (its `from_env`
//! reads each var, its tests exercise each, and its doc comment enumerates
//! them — so a var dropped from the code without updating its own docs also
//! fails `cargo doc` review, while this test catches the README/TUNING.md
//! copies). A knob added to any one surface without the others fails here
//! with the missing names spelled out.

use std::collections::BTreeSet;
use std::path::Path;

/// Extracts every `RAMR_<NAME>` token from `text` (maximal runs of
/// `[A-Z0-9_]` after the prefix). Bare `RAMR_` (as in the prose "`RAMR_*`
/// variables") is not a token.
fn ramr_env_tokens(text: &str) -> BTreeSet<String> {
    let bytes = text.as_bytes();
    let mut found = BTreeSet::new();
    let mut from = 0;
    while let Some(at) = text[from..].find("RAMR_") {
        let start = from + at;
        let mut end = start + "RAMR_".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        // Require at least one character beyond the prefix, and not a
        // continuation of a longer identifier (e.g. `X_RAMR_Y`).
        let standalone =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        if end > start + "RAMR_".len() && standalone {
            found.insert(text[start..end].trim_end_matches('_').to_string());
        }
        from = end;
    }
    found
}

fn read(rel: &str) -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("cannot read {rel}: {e}"))
}

fn assert_same_surface(doc_name: &str, documented: &BTreeSet<String>, code: &BTreeSet<String>) {
    let undocumented: Vec<_> = code.difference(documented).collect();
    let phantom: Vec<_> = documented.difference(code).collect();
    assert!(
        undocumented.is_empty(),
        "env vars read by RuntimeConfig::from_env but missing from {doc_name}: \
         {undocumented:?} — add them to the knob table"
    );
    assert!(
        phantom.is_empty(),
        "env vars documented in {doc_name} but not read by RuntimeConfig::from_env: \
         {phantom:?} — remove them or wire them up in config.rs"
    );
}

#[test]
fn readme_env_table_matches_config_from_env() {
    let code = ramr_env_tokens(&read("crates/mr-core/src/config.rs"));
    assert!(
        code.contains("RAMR_WORKERS") && code.len() >= 10,
        "token scan of config.rs looks broken: {code:?}"
    );
    assert_same_surface("README.md", &ramr_env_tokens(&read("README.md")), &code);
}

#[test]
fn tuning_cookbook_matches_config_from_env() {
    let code = ramr_env_tokens(&read("crates/mr-core/src/config.rs"));
    assert_same_surface("TUNING.md", &ramr_env_tokens(&read("TUNING.md")), &code);
}

#[test]
fn knob_table_is_the_single_source_for_env_names() {
    // `mr_core::ENV_KNOBS` is the one table every surface parses through.
    // The token scan of config.rs (table rows plus the `from_env` doc
    // comment) must yield exactly the table's env names — an env var
    // mentioned in config.rs but absent from the table (or vice versa)
    // means a knob exists on one surface only.
    let table: BTreeSet<String> =
        mr_core::ENV_KNOBS.iter().map(|knob| knob.env.to_string()).collect();
    let scanned = ramr_env_tokens(&read("crates/mr-core/src/config.rs"));
    assert_eq!(
        scanned, table,
        "config.rs mentions env vars that differ from the ENV_KNOBS table — \
         every knob must live in the table, and only there"
    );
}

#[test]
fn cli_help_lists_every_knob_flag() {
    // The CLI accepts `--<cli>` for every table row (main.rs builds its
    // flag list from ENV_KNOBS), so the help text must advertise each one.
    let commands = read("crates/cli/src/commands.rs");
    for knob in mr_core::ENV_KNOBS {
        let flag = format!("--{}", knob.cli);
        assert!(
            commands.contains(&flag),
            "CLI help in crates/cli/src/commands.rs does not mention {flag} \
             (the flag for {}); add it to the `run` usage block",
            knob.env
        );
    }
}

#[test]
fn service_doc_knob_table_matches_both_knob_tables() {
    // SERVICE.md is the operator reference for the job server: it must
    // document every `RAMR_SERVE_*` service knob AND every `RAMR_*`
    // runtime knob (clients override them per job), and nothing else.
    let mut code: BTreeSet<String> =
        mr_core::ENV_KNOBS.iter().map(|knob| knob.env.to_string()).collect();
    code.extend(ramr_serve::SERVE_KNOBS.iter().map(|knob| knob.env.to_string()));
    let documented = ramr_env_tokens(&read("SERVICE.md"));
    let undocumented: Vec<_> = code.difference(&documented).collect();
    let phantom: Vec<_> = documented.difference(&code).collect();
    assert!(
        undocumented.is_empty(),
        "knobs missing from SERVICE.md: {undocumented:?} — add them to its tables"
    );
    assert!(
        phantom.is_empty(),
        "env vars documented in SERVICE.md but absent from ENV_KNOBS/SERVE_KNOBS: \
         {phantom:?} — remove them or wire them up"
    );
}

/// Extracts the backticked `ALL_CAPS` tokens between the
/// `protocol-messages` markers in SERVICE.md — the documented wire
/// message names.
fn documented_messages(service: &str) -> BTreeSet<String> {
    let start = service
        .find("<!-- protocol-messages:start -->")
        .expect("SERVICE.md must keep the protocol-messages:start marker");
    let end = service
        .find("<!-- protocol-messages:end -->")
        .expect("SERVICE.md must keep the protocol-messages:end marker");
    let section = &service[start..end];
    let mut found = BTreeSet::new();
    for piece in section.split('`').skip(1).step_by(2) {
        let caps = !piece.is_empty() && piece.bytes().all(|b| b.is_ascii_uppercase() || b == b'_');
        if caps {
            found.insert(piece.to_string());
        }
    }
    found
}

#[test]
fn service_doc_message_reference_matches_the_wire_enums() {
    // Both directions: every request/response kind the serve crate speaks
    // appears in SERVICE.md's message reference, and the reference names
    // no message the code does not speak.
    let mut code: BTreeSet<String> =
        ramr_serve::RequestKind::ALL.iter().map(|k| k.as_str().to_string()).collect();
    code.extend(ramr_serve::ResponseKind::ALL.iter().map(|k| k.as_str().to_string()));
    let documented = documented_messages(&read("SERVICE.md"));
    let undocumented: Vec<_> = code.difference(&documented).collect();
    let phantom: Vec<_> = documented.difference(&code).collect();
    assert!(
        undocumented.is_empty(),
        "wire messages missing from SERVICE.md's protocol reference: {undocumented:?}"
    );
    assert!(
        phantom.is_empty(),
        "SERVICE.md documents messages the serve crate does not speak: {phantom:?}"
    );
}

/// Extracts the backticked kebab-case tokens between the `shed-reasons`
/// markers of one document — the documented typed shed-reason names.
fn documented_shed_reasons(doc: &str, text: &str) -> BTreeSet<String> {
    let start = text
        .find("<!-- shed-reasons:start -->")
        .unwrap_or_else(|| panic!("{doc} must keep the shed-reasons:start marker"));
    let end = text
        .find("<!-- shed-reasons:end -->")
        .unwrap_or_else(|| panic!("{doc} must keep the shed-reasons:end marker"));
    let section = &text[start..end];
    let mut found = BTreeSet::new();
    for piece in section.split('`').skip(1).step_by(2) {
        let kebab = !piece.is_empty() && piece.bytes().all(|b| b.is_ascii_lowercase() || b == b'-');
        if kebab {
            found.insert(piece.to_string());
        }
    }
    found
}

#[test]
fn shed_reason_tables_match_the_typed_enum() {
    // TUNING.md (runtime surface) and SERVICE.md (wire surface) each
    // carry a shed-reason table; both must name exactly the reasons
    // `ShedReason::ALL` can produce — a variant added to the enum
    // without documenting what operators should do about it fails here,
    // as does a documented reason the scheduler can no longer emit.
    let code: BTreeSet<String> =
        ramr::ShedReason::ALL.iter().map(|r| r.as_str().to_string()).collect();
    assert!(code.contains("rate-limited"), "enum scan looks broken: {code:?}");
    for doc in ["TUNING.md", "SERVICE.md"] {
        let documented = documented_shed_reasons(doc, &read(doc));
        let undocumented: Vec<_> = code.difference(&documented).collect();
        let phantom: Vec<_> = documented.difference(&code).collect();
        assert!(
            undocumented.is_empty(),
            "shed reasons missing from {doc}'s table: {undocumented:?}"
        );
        assert!(
            phantom.is_empty(),
            "{doc} documents shed reasons the scheduler cannot emit: {phantom:?}"
        );
    }
}

#[test]
fn cli_help_lists_every_serve_flag() {
    // `ramr serve` accepts `--<cli>` for every SERVE_KNOBS row (main.rs
    // builds the flag list from the table), so help must advertise each.
    let commands = read("crates/cli/src/commands.rs");
    for knob in ramr_serve::SERVE_KNOBS {
        let flag = format!("--{}", knob.cli);
        assert!(
            commands.contains(&flag),
            "CLI help in crates/cli/src/commands.rs does not mention {flag} \
             (the flag for {}); add it to the `serve` usage block",
            knob.env
        );
    }
}

#[test]
fn service_doc_is_linked_and_isolated() {
    // Discoverable: README and DESIGN must link the operator guide.
    assert!(
        read("README.md").contains("SERVICE.md"),
        "README.md must link the SERVICE.md operator guide"
    );
    assert!(
        read("DESIGN.md").contains("SERVICE.md"),
        "DESIGN.md must reference the SERVICE.md operator guide"
    );
    // Isolated: the runtime-knob docs stay scoped to the runtime surface —
    // service knobs live in SERVICE.md only (the strict token-equality
    // tests above enforce the same thing; this spells the rule out).
    for doc in ["README.md", "TUNING.md"] {
        let tokens = ramr_env_tokens(&read(doc));
        let leaked: Vec<_> = tokens.iter().filter(|t| t.starts_with("RAMR_SERVE")).collect();
        assert!(leaked.is_empty(), "{doc} documents service knobs {leaked:?}; see SERVICE.md");
    }
}

#[test]
fn readme_links_the_tuning_cookbook() {
    assert!(
        read("README.md").contains("TUNING.md"),
        "README.md must link the TUNING.md knob cookbook"
    );
    assert!(
        read("DESIGN.md").contains("TUNING.md"),
        "DESIGN.md must reference the TUNING.md knob cookbook"
    );
}

#[test]
fn token_scanner_self_test() {
    let text = "use `RAMR_WORKERS` and RAMR_BATCH_SIZE; the `RAMR_*` family; NOT_RAMR_THIS";
    let tokens = ramr_env_tokens(text);
    assert_eq!(
        tokens.into_iter().collect::<Vec<_>>(),
        vec!["RAMR_BATCH_SIZE".to_string(), "RAMR_WORKERS".to_string()]
    );
}
