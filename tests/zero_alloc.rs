//! Counting-allocator proof of the zero-alloc emission path.
//!
//! The tentpole claim of the compact-key pipeline is that the word-count
//! map-combine hot loop performs **zero heap allocations per emitted word**
//! when keys fit `CompactKey`'s inline buffer: lower-casing writes into the
//! inline buffer, `Hashed::wrap` computes the hash without touching the
//! heap, and a pre-sized combine table neither grows nor boxes keys. This
//! binary installs a counting `#[global_allocator]` and asserts exactly
//! that — and, as a control, that the seed `String` path allocates at
//! least once per word on the same input.
//!
//! The test lives alone in this binary: a shared test binary would run
//! sibling tests concurrently and their allocations would race the
//! counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mr_apps::WordCount;
use mr_core::{Emitter, HasherKind, MapReduceJob};
use ramr_containers::{CompactKey, HashContainer, Hashed, Passthrough};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a side effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn map_combine_hot_loop_is_zero_alloc_for_inline_keys() {
    // Every word is <= INLINE_CAPACITY bytes, as in natural text.
    let input: Vec<String> = (0..256)
        .map(|i| format!("Alpha bravo-{} ChArLiE delta w{:03} mapreduce", i % 17, i % 41))
        .collect();
    let word_count: usize = input.iter().map(|l| l.split_ascii_whitespace().count()).sum();
    assert!(input
        .iter()
        .flat_map(|l| l.split_ascii_whitespace())
        .all(|w| w.len() <= CompactKey::INLINE_CAPACITY));

    // Pre-size the combine table past the unique-key count, as the runtime
    // does for repeat jobs; `with_capacity(n)` guarantees n keys fit
    // without growth.
    let mut table: HashContainer<Hashed<CompactKey>, u64, Passthrough> =
        HashContainer::with_capacity_and_hasher(1024, Passthrough);

    let before = allocations();
    let mut sink = |key: CompactKey, value: u64| {
        let key = Hashed::wrap(HasherKind::Fx, key);
        table.combine_insert_hashed(key.hash(), key, value, |a, b| *a += b);
    };
    WordCount.map(&input, &mut Emitter::new(&mut sink));
    let after = allocations();

    assert!(!table.is_empty() && table.len() < 1024);
    assert_eq!(
        after - before,
        0,
        "the inline-key map-combine loop must not touch the heap \
         ({} words emitted, {} allocations observed)",
        word_count,
        after - before
    );

    // Control: the seed String path allocates at least once per word
    // (`to_ascii_lowercase`), proving the counter observes this loop.
    let mut seed_table: HashContainer<String, u64> = HashContainer::with_capacity(1024);
    let before = allocations();
    for line in &input {
        for word in line.split_ascii_whitespace() {
            seed_table.combine_insert(word.to_ascii_lowercase(), 1, |a, b| *a += b);
        }
    }
    let after = allocations();
    assert!(
        after - before >= word_count as u64,
        "the String control path should allocate per word ({} words, {} allocations)",
        word_count,
        after - before
    );
    assert_eq!(seed_table.len(), table.len());
}
