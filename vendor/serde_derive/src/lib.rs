//! Offline stand-in for `serde_derive`: the derives expand to an empty
//! token stream. Nothing in the workspace consumes the generated impls
//! (no serializer is ever invoked), so an empty expansion is sufficient
//! and works for any input type, generic or not.
//! See `vendor/README.md` for the rationale.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
