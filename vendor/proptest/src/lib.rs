//! Offline stand-in for `proptest`, implementing the subset the workspace
//! uses: the [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros,
//! [`strategy::Strategy`] with `prop_map`, [`strategy::Just`], `any::<T>()`,
//! integer-range strategies, and [`collection::vec`].
//!
//! Differences from the real crate, by design:
//! - No shrinking: a failing case reports its inputs via the assertion
//!   message but is not minimised.
//! - Deterministic: the RNG seed derives from the test's module path and
//!   name, so every run explores the same cases. There is no persistence
//!   of failing seeds (`proptest-regressions` files are ignored).
//!
//! See `vendor/README.md` for the rationale.

/// Per-property configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for struct-update compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic RNG used to drive generation.
pub mod test_runner {
    /// SplitMix64 seeded from the owning test's full path.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `test_path`.
        pub fn for_case(test_path: &str) -> Self {
            // FNV-1a over the path: stable across runs and toolchains.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// An object-safe generator of values of type `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Erases a strategy's concrete type (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between boxed arms (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; panics when `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Whole-domain strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// A strategy over the full domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Types `any::<T>()` can produce.
    pub trait Arbitrary: Sized {
        /// Draws one uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Uniform in [0, 1); full-domain floats mostly produce huge
            // magnitudes and NaNs that no property here wants.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests (see module docs for the
/// differences from real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_case(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let run = || -> () { $body };
                if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest stub: property {} failed at case {}/{} (deterministic seed; no shrinking)",
                        stringify!($name), case, config.cases
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// Uniform choice between the listed strategies (all must share one value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Stand-in for proptest's `prop_assert!`: plain `assert!` (panics rather
/// than returning a test-case error; no shrinking follows).
#[macro_export]
macro_rules! prop_assert {
    ($($tok:tt)*) => { assert!($($tok)*) };
}

/// Stand-in for `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tok:tt)*) => { assert_eq!($($tok)*) };
}

/// Stand-in for `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tok:tt)*) => { assert_ne!($($tok)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        A,
        B(u16),
    }

    fn tag_strategy() -> impl Strategy<Value = Tag> {
        prop_oneof![Just(Tag::A), any::<u16>().prop_map(Tag::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(
            v in crate::collection::vec(0u16..512, 2..40),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 40);
            for e in v {
                prop_assert!(e < 512);
            }
        }

        #[test]
        fn oneof_and_map_compose(t in tag_strategy()) {
            match t {
                Tag::A => {}
                Tag::B(_) => {}
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("x::y");
        let mut b = crate::test_runner::TestRng::for_case("x::y");
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
