//! Offline stand-in for `parking_lot`: thin poison-free wrappers over the
//! std primitives, matching the `parking_lot` lock API shape (no `Result`
//! from `lock()`). See `vendor/README.md` for the rationale.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex that relieves the caller of poison handling.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock that relieves the caller of poison handling.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
