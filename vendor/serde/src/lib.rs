//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and model
//! types but never actually serializes anything (no `serde_json`, no
//! persistence), so the derives here expand to nothing and the traits carry
//! no required items. See `vendor/README.md` for the rationale.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
