//! Offline stand-in for the `crossbeam` facade crate.
//!
//! Provides the single item this workspace uses: [`utils::CachePadded`].
//! See `vendor/README.md` for the rationale.

pub mod utils {
    /// Pads and aligns a value to the length of a cache line, preventing
    /// false sharing between adjacent values.
    ///
    /// 128-byte alignment covers the spatial-prefetcher pair of 64-byte
    /// lines on modern x86 and the 128-byte lines of several AArch64 parts.
    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line padding.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Unwraps the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> core::ops::Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> core::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }

    impl<T: core::fmt::Debug> core::fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.debug_struct("CachePadded").field("value", &self.value).finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::CachePadded;

        #[test]
        fn aligns_to_cache_line() {
            assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
            let padded = CachePadded::new(7u64);
            assert_eq!(*padded, 7);
            assert_eq!(padded.into_inner(), 7);
        }
    }
}
