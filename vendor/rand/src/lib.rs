//! Offline stand-in for `rand` 0.8, implementing exactly the surface the
//! workspace's Table I input generators use: a seeded [`rngs::StdRng`],
//! [`Rng::gen`] / [`Rng::gen_range`], and
//! [`distributions::Uniform`]. The generator is SplitMix64 — statistically
//! solid for synthetic-input purposes and fully deterministic per seed.
//! See `vendor/README.md` for the rationale.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator methods (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniformly random value of `T` over its full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (always available, unlike the
    /// real crate's associated `Seed` array, which nothing here uses).
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 explicit mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // Sebastiano Vigna's SplitMix64.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

/// Types with a natural "uniform over the whole domain" distribution.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_one<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Span fits in u64 for every integer type we cover.
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = rng.next_u64() % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// The `rand::distributions` module surface.
pub mod distributions {
    use super::{RngCore, SampleRange};
    use std::ops::Range;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Samples one value from `rng`.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy> Uniform<T> {
        /// A uniform distribution over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            Self { low, high }
        }
    }

    impl<T: Copy> Distribution<T> for Uniform<T>
    where
        Range<T>: SampleRange<T>,
    {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T {
            (self.low..self.high).sample_one(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i32 = rng.gen_range(-1000..1000);
            assert!((-1000..1000).contains(&x));
            let f = rng.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn uniform_distribution_covers_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let uniform = Uniform::new(0.0, 10.0);
        let mut sum = 0.0;
        const N: usize = 100_000;
        for _ in 0..N {
            let v = uniform.sample(&mut rng);
            assert!((0.0..10.0).contains(&v));
            sum += v;
        }
        let mean = sum / N as f64;
        assert!((mean - 5.0).abs() < 0.1, "uniform mean drifted: {mean}");
    }
}
