//! Offline stand-in for `criterion`, implementing the subset the workspace's
//! benches use: `criterion_group!` / `criterion_main!`, [`Criterion`],
//! benchmark groups with [`Throughput`], [`BenchmarkId`], and a measuring
//! [`Bencher::iter`].
//!
//! Measurements are real wall-clock timings (warm-up, then an adaptive
//! number of timed iterations), so relative comparisons between benchmarks
//! in one run are meaningful. There is no statistical analysis, HTML
//! report, or baseline persistence. See `vendor/README.md` for the
//! rationale.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const TARGET_MEASURE: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 100_000;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Units for reporting throughput alongside time per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        Self {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

/// A named group sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the adaptive measurement loop picks
    /// its own iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the measurement window is fixed.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs `routine` as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut routine);
        self
    }

    /// Runs `routine` with `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.full.clone();
        self.run_one(&label, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    fn run_one(&mut self, label: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { ns_per_iter: None };
        routine(&mut bencher);
        match bencher.ns_per_iter {
            Some(ns) => {
                let rate = self.throughput.map(|t| match t {
                    Throughput::Elements(n) => format!(" ({:.1} Melem/s)", n as f64 / ns * 1e3),
                    Throughput::Bytes(n) => format!(" ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64),
                });
                println!(
                    "  {}/{label}: {ns:.0} ns/iter{}",
                    self.name,
                    rate.unwrap_or_default()
                );
            }
            None => println!("  {}/{label}: no measurement (b.iter never called)", self.name),
        }
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measures `routine`: a short warm-up, then timed iterations until
    /// the measurement window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));

        let iters = (TARGET_MEASURE.as_nanos() / probe.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.ns_per_iter = Some(elapsed.as_nanos() as f64 / iters as f64);
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| {
            b.iter(|| (0u64..64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum-to", 128u32), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
