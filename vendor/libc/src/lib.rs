//! Offline stand-in for `libc`, exposing only the CPU-affinity surface the
//! `ramr-topology` crate uses. Layouts match glibc so the real
//! `sched_setaffinity(2)` syscall can be invoked directly.
//! See `vendor/README.md` for the rationale.

#![allow(non_camel_case_types, non_snake_case)]

/// C `int`.
pub type c_int = i32;
/// POSIX process/thread id.
pub type pid_t = i32;
/// C `size_t`.
pub type size_t = usize;

/// Number of CPUs representable in a [`cpu_set_t`] (glibc value).
pub const CPU_SETSIZE: c_int = 1024;

const BITS_PER_WORD: usize = 64;
const WORDS: usize = CPU_SETSIZE as usize / BITS_PER_WORD;

/// A CPU bitmask, layout-compatible with glibc's `cpu_set_t` (1024 bits).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; WORDS],
}

/// Clears every CPU in `set`.
///
/// # Safety
///
/// Matches the signature shape of the glibc macro binding; operating on a
/// plain bitset is always safe in practice.
#[allow(unsafe_op_in_unsafe_fn, clippy::missing_safety_doc)]
pub unsafe fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; WORDS];
}

/// Adds `cpu` to `set`. Out-of-range ids are ignored (as in glibc).
///
/// # Safety
///
/// Matches the signature shape of the glibc macro binding; operating on a
/// plain bitset is always safe in practice.
#[allow(unsafe_op_in_unsafe_fn, clippy::missing_safety_doc)]
pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        set.bits[cpu / BITS_PER_WORD] |= 1u64 << (cpu % BITS_PER_WORD);
    }
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Binds `pid` (0 = calling thread) to the CPUs in `cpuset`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
}

/// Non-Linux fallback so the crate still type-checks if ever compiled
/// there; always fails with a nonzero return.
///
/// # Safety
///
/// Trivially safe; only reads the provided pointer's provenance, not its
/// contents.
#[cfg(not(target_os = "linux"))]
#[allow(clippy::missing_safety_doc)]
pub unsafe fn sched_setaffinity(_pid: pid_t, _cpusetsize: size_t, _cpuset: *const cpu_set_t) -> c_int {
    -1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_set_matches_glibc_size() {
        assert_eq!(std::mem::size_of::<cpu_set_t>(), 128);
    }

    #[test]
    fn set_and_zero_manipulate_bits() {
        unsafe {
            let mut set: cpu_set_t = std::mem::zeroed();
            CPU_ZERO(&mut set);
            CPU_SET(3, &mut set);
            CPU_SET(64, &mut set);
            assert_eq!(set.bits[0], 1 << 3);
            assert_eq!(set.bits[1], 1);
            CPU_SET(1 << 20, &mut set); // out of range: ignored
            CPU_ZERO(&mut set);
            assert!(set.bits.iter().all(|&w| w == 0));
        }
    }
}
